#include "stats/selection.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace sci::stats {

namespace {

// Below this the partition machinery costs more than a straight
// insertion sort of the remaining window.
constexpr std::size_t kSmallCutoff = 24;

void insertion_sort(std::uint32_t* a, std::size_t n) noexcept {
  for (std::size_t i = 1; i < n; ++i) {
    const std::uint32_t v = a[i];
    std::size_t j = i;
    while (j > 0 && a[j - 1] > v) {
      a[j] = a[j - 1];
      --j;
    }
    a[j] = v;
  }
}

/// Branchless Lomuto: unconditional swap, predicated advance. After the
/// loop a[0..ret) < pivot and a[ret..n) >= pivot.
std::size_t partition_less(std::uint32_t* a, std::size_t n, std::uint32_t pivot) noexcept {
  std::size_t store = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t v = a[i];
    a[i] = a[store];
    a[store] = v;
    store += static_cast<std::size_t>(v < pivot);
  }
  return store;
}

/// Same, splitting == pivot from > pivot; callers apply it to a region
/// already known to be >= pivot, so the prefix it returns is the tie run.
std::size_t partition_leq(std::uint32_t* a, std::size_t n, std::uint32_t pivot) noexcept {
  std::size_t store = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t v = a[i];
    a[i] = a[store];
    a[store] = v;
    store += static_cast<std::size_t>(v <= pivot);
  }
  return store;
}

std::uint32_t median3(std::uint32_t x, std::uint32_t y, std::uint32_t z) noexcept {
  const std::uint32_t lo = std::min(x, y);
  const std::uint32_t hi = std::max(x, y);
  return std::max(lo, std::min(hi, z));
}

}  // namespace

std::uint32_t min_of(const std::uint32_t* a, std::size_t n) noexcept {
  std::uint32_t best = a[0];
  for (std::size_t i = 1; i < n; ++i) best = std::min(best, a[i]);
  return best;
}

std::uint32_t max_of(const std::uint32_t* a, std::size_t n) noexcept {
  std::uint32_t best = a[0];
  for (std::size_t i = 1; i < n; ++i) best = std::max(best, a[i]);
  return best;
}

std::uint32_t select_kth(std::uint32_t* a, std::size_t n, std::size_t k) noexcept {
  while (n > kSmallCutoff) {
    const std::uint32_t pivot = median3(a[0], a[n / 2], a[n - 1]);
    const std::size_t lt = partition_less(a, n, pivot);
    if (k < lt) {
      n = lt;
      continue;
    }
    // a[lt..n) >= pivot, and the pivot value itself lives there, so the
    // <= prefix is a nonempty tie run: guaranteed progress.
    const std::size_t eq = partition_leq(a + lt, n - lt, pivot);
    if (k < lt + eq) return pivot;
    a += lt + eq;
    n -= lt + eq;
    k -= lt + eq;
  }
  insertion_sort(a, n);
  return a[k];
}

SelectedPair select_kth_pair(std::uint32_t* a, std::size_t n, std::size_t k) noexcept {
  // Minimum over every discarded right region. Each such region's
  // minimum is its pivot (it holds the >= pivot elements, pivot
  // included), so a running min of discarded pivots suffices.
  std::uint32_t right_min = std::numeric_limits<std::uint32_t>::max();
  bool have_right = false;
  while (n > kSmallCutoff) {
    const std::uint32_t pivot = median3(a[0], a[n / 2], a[n - 1]);
    const std::size_t lt = partition_less(a, n, pivot);
    if (k < lt) {
      right_min = have_right ? std::min(right_min, pivot) : pivot;
      have_right = true;
      n = lt;
      continue;
    }
    const std::size_t eq = partition_leq(a + lt, n - lt, pivot);
    if (k < lt + eq) {
      if (k + 1 < lt + eq) return {pivot, pivot};
      std::uint32_t next = have_right ? right_min : std::numeric_limits<std::uint32_t>::max();
      if (lt + eq < n) next = std::min(next, min_of(a + lt + eq, n - lt - eq));
      return {pivot, next};
    }
    a += lt + eq;
    n -= lt + eq;
    k -= lt + eq;
  }
  insertion_sort(a, n);
  const std::uint32_t kth = a[k];
  const std::uint32_t next = (k + 1 < n) ? a[k + 1] : right_min;
  return {kth, next};
}

QuantilePlan make_quantile_plan(std::size_t n, double p, QuantileMethod method) {
  QuantilePlan plan;
  switch (method) {
    case QuantileMethod::kR1InverseEcdf: {
      if (p == 0.0) {
        plan.mode = QuantilePlan::Mode::kMin;
        return plan;
      }
      plan.mode = QuantilePlan::Mode::kSingle;
      plan.k = std::min(
          static_cast<std::size_t>(std::ceil(p * static_cast<double>(n))) - 1, n - 1);
      return plan;
    }
    case QuantileMethod::kR6Weibull: {
      const double h = (static_cast<double>(n) + 1.0) * p;
      if (h <= 1.0) {
        plan.mode = QuantilePlan::Mode::kMin;
        return plan;
      }
      if (h >= static_cast<double>(n)) {
        plan.mode = QuantilePlan::Mode::kMax;
        return plan;
      }
      const auto k = static_cast<std::size_t>(std::floor(h));
      plan.mode = QuantilePlan::Mode::kPair;
      plan.k = k - 1;
      plan.frac = h - static_cast<double>(k);
      return plan;
    }
    case QuantileMethod::kR7Linear: {
      const double h = (static_cast<double>(n) - 1.0) * p;
      const auto k = static_cast<std::size_t>(std::floor(h));
      if (k + 1 >= n) {
        plan.mode = QuantilePlan::Mode::kMax;
        return plan;
      }
      plan.mode = QuantilePlan::Mode::kPair;
      plan.k = k;
      plan.frac = h - static_cast<double>(k);
      return plan;
    }
  }
  throw std::logic_error("make_quantile_plan: unknown quantile method");
}

double selection_quantile(std::span<std::uint32_t> picks, std::span<const double> sorted,
                          double p, QuantileMethod method) {
  return selection_quantile(picks, sorted, make_quantile_plan(picks.size(), p, method));
}

double selection_quantile(std::span<std::uint32_t> picks, std::span<const double> sorted,
                          const QuantilePlan& plan) noexcept {
  const std::size_t n = picks.size();
  std::uint32_t* a = picks.data();
  switch (plan.mode) {
    case QuantilePlan::Mode::kMin:
      return sorted[min_of(a, n)];
    case QuantilePlan::Mode::kMax:
      return sorted[max_of(a, n)];
    case QuantilePlan::Mode::kSingle:
      return sorted[select_kth(a, n, plan.k)];
    case QuantilePlan::Mode::kPair: {
      const SelectedPair pair = select_kth_pair(a, n, plan.k);
      const double a_val = sorted[pair.kth];
      const double b_val = sorted[pair.next];
      return a_val + plan.frac * (b_val - a_val);
    }
  }
  return sorted[0];  // unreachable: all modes handled above
}

}  // namespace sci::stats
