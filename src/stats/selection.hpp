// Branchless order-statistic selection over u32 keys -- the bootstrap
// resample kernel. The selection fast path (bootstrap.cpp) reduces each
// quantile replicate to "k-th smallest of n resampled ranks"; on random
// rank data std::nth_element's branchy partition mispredicts ~every
// second element, which dominates the replicate cost. These kernels use
// a cmov-friendly Lomuto partition (unconditional swap + predicated
// store-index advance, no branches on data) with three-way pivot
// handling so duplicate-heavy resamples cannot degrade quadratically.
//
// All selections are exact (same multiset semantics as nth_element), so
// any caller mixing these with the STL algorithms gets bit-identical
// doubles out of sorted[k-th rank].
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "stats/descriptive.hpp"  // QuantileMethod

namespace sci::stats {

/// k-th smallest (0-based) element of a[0..n). Partially reorders `a`.
/// Requires k < n, n >= 1.
[[nodiscard]] std::uint32_t select_kth(std::uint32_t* a, std::size_t n,
                                       std::size_t k) noexcept;

struct SelectedPair {
  std::uint32_t kth = 0;   ///< k-th smallest
  std::uint32_t next = 0;  ///< (k+1)-th smallest
};

/// k-th and (k+1)-th smallest in one selection pass (the interpolation
/// neighbors R6/R7 quantiles need). Requires k + 1 < n.
[[nodiscard]] SelectedPair select_kth_pair(std::uint32_t* a, std::size_t n,
                                           std::size_t k) noexcept;

[[nodiscard]] std::uint32_t min_of(const std::uint32_t* a, std::size_t n) noexcept;
[[nodiscard]] std::uint32_t max_of(const std::uint32_t* a, std::size_t n) noexcept;

/// Which order statistics a (p, method, n) quantile needs, precomputed
/// so a hot loop over same-length resamples decides it once. Both
/// replicate kernels -- partition selection below and histogram
/// selection (histogram_select.hpp) -- consume the same plan and share
/// the interpolation `a + frac * (b - a)` verbatim, which is what makes
/// them bit-identical to each other and to quantile() on a materialized
/// resample.
struct QuantilePlan {
  enum class Mode {
    kMin,     ///< minimum of the resample
    kMax,     ///< maximum
    kSingle,  ///< the k-th order statistic, no interpolation (R1)
    kPair,    ///< interpolate between the k-th and (k+1)-th
  };
  Mode mode = Mode::kSingle;
  std::size_t k = 0;    ///< 0-based rank (kSingle / kPair)
  double frac = 0.0;    ///< interpolation weight (kPair)
};

/// Plan for the p-quantile of an n-element resample. Mirrors
/// quantile_sorted()'s per-method arithmetic term for term.
[[nodiscard]] QuantilePlan make_quantile_plan(std::size_t n, double p,
                                              QuantileMethod method);

/// p-quantile of the resample whose sorted-sample ranks are in `picks`
/// (destroyed by selection). Mirrors quantile_sorted() term for term per
/// method, so results are bit-identical to evaluating the quantile on a
/// materialized resample. Shared by the scalar fast path and the
/// multi-lane engine.
[[nodiscard]] double selection_quantile(std::span<std::uint32_t> picks,
                                        std::span<const double> sorted, double p,
                                        QuantileMethod method);

/// Same, with the plan hoisted out of the replicate loop.
[[nodiscard]] double selection_quantile(std::span<std::uint32_t> picks,
                                        std::span<const double> sorted,
                                        const QuantilePlan& plan) noexcept;

}  // namespace sci::stats
