#include "stats/simd_dispatch.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define SCIBENCH_SIMD_AVX2 1
#include <immintrin.h>
#else
#define SCIBENCH_SIMD_AVX2 0
#endif

namespace sci::stats::simd {

namespace {

// ------------------------------------------------------------- scalar

/// Four interleaved Kahan chains (moved here from bootstrap_engine.cpp):
/// per-row op order is identical to a single-row Kahan mean, so the
/// tiling -- and, in the AVX2 twin, the ymm lane placement -- never
/// changes a bit of any row's result.
void mean_rows4_scalar(const double* xs, const std::uint32_t* idx, std::size_t n,
                       std::size_t stride, double* out) noexcept {
  double s0 = 0.0, c0 = 0.0, s1 = 0.0, c1 = 0.0;
  double s2 = 0.0, c2 = 0.0, s3 = 0.0, c3 = 0.0;
  const std::uint32_t* r0 = idx;
  const std::uint32_t* r1 = idx + stride;
  const std::uint32_t* r2 = idx + 2 * stride;
  const std::uint32_t* r3 = idx + 3 * stride;
  for (std::size_t i = 0; i < n; ++i) {
    const double x0 = xs[r0[i]], y0 = x0 - c0, t0 = s0 + y0;
    c0 = (t0 - s0) - y0;
    s0 = t0;
    const double x1 = xs[r1[i]], y1 = x1 - c1, t1 = s1 + y1;
    c1 = (t1 - s1) - y1;
    s1 = t1;
    const double x2 = xs[r2[i]], y2 = x2 - c2, t2 = s2 + y2;
    c2 = (t2 - s2) - y2;
    s2 = t2;
    const double x3 = xs[r3[i]], y3 = x3 - c3, t3 = s3 + y3;
    c3 = (t3 - s3) - y3;
    s3 = t3;
  }
  const auto nd = static_cast<double>(n);
  out[0] = s0 / nd;
  out[1] = s1 / nd;
  out[2] = s2 / nd;
  out[3] = s3 / nd;
}

void histogram_fill_scalar(const std::uint32_t* row, std::size_t m, std::uint32_t* counts,
                           std::size_t bins) noexcept {
  std::memset(counts, 0, bins * sizeof(std::uint32_t));
  // Scatter increments don't vectorize below AVX-512 CD; unroll by four
  // so the (rare, random-rank) same-bin store-to-load stalls overlap.
  std::size_t i = 0;
  for (; i + 4 <= m; i += 4) {
    ++counts[row[i]];
    ++counts[row[i + 1]];
    ++counts[row[i + 2]];
    ++counts[row[i + 3]];
  }
  for (; i < m; ++i) ++counts[row[i]];
}

std::uint32_t rank_select_scalar(const std::uint32_t* counts, std::size_t /*bins*/,
                                 std::size_t k) noexcept {
  std::size_t cum = 0, b = 0;
  while (cum + counts[b] <= k) cum += counts[b++];
  return static_cast<std::uint32_t>(b);
}

SelectedPair rank_select_pair_scalar(const std::uint32_t* counts, std::size_t bins,
                                     std::size_t k) noexcept {
  std::size_t cum = 0, b = 0;
  while (cum + counts[b] <= k) cum += counts[b++];
  SelectedPair out;
  out.kth = static_cast<std::uint32_t>(b);
  if (cum + counts[b] > k + 1) {  // the (k+1)-th lives in the same bin
    out.next = out.kth;
    return out;
  }
  std::size_t nb = b + 1;
  while (nb < bins && counts[nb] == 0) ++nb;
  // Caller guarantees k + 1 < total count, so a populated bin exists.
  out.next = static_cast<std::uint32_t>(nb);
  return out;
}

[[maybe_unused]] constexpr Kernels kScalarKernels = {
    Isa::kScalar, mean_rows4_scalar, histogram_fill_scalar,
    rank_select_scalar, rank_select_pair_scalar,
};

// --------------------------------------------------------------- AVX2

#if SCIBENCH_SIMD_AVX2

/// Same four Kahan chains, one per ymm lane. vaddpd/vsubpd are per-lane
/// IEEE adds and the gather is four loads, so lane j computes exactly
/// the scalar chain for row j -- bit-identical by construction, pinned
/// by differential tests. Requires indices < 2^31 (i32 gather).
__attribute__((target("avx2"))) void mean_rows4_avx2(const double* xs,
                                                     const std::uint32_t* idx,
                                                     std::size_t n, std::size_t stride,
                                                     double* out) noexcept {
  const std::uint32_t* r0 = idx;
  const std::uint32_t* r1 = idx + stride;
  const std::uint32_t* r2 = idx + 2 * stride;
  const std::uint32_t* r3 = idx + 3 * stride;
  __m256d sum = _mm256_setzero_pd();
  __m256d comp = _mm256_setzero_pd();
  // Masked form with an all-ones mask: identical gather, but the
  // explicit zero source dodges gcc's -Wmaybe-uninitialized false
  // positive on _mm256_undefined_pd() in the unmasked intrinsic.
  const __m256d all = _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
  for (std::size_t i = 0; i < n; ++i) {
    const __m128i vi =
        _mm_setr_epi32(static_cast<int>(r0[i]), static_cast<int>(r1[i]),
                       static_cast<int>(r2[i]), static_cast<int>(r3[i]));
    const __m256d x = _mm256_mask_i32gather_pd(_mm256_setzero_pd(), xs, vi, all, 8);
    const __m256d y = _mm256_sub_pd(x, comp);
    const __m256d t = _mm256_add_pd(sum, y);
    comp = _mm256_sub_pd(_mm256_sub_pd(t, sum), y);
    sum = t;
  }
  const __m256d mean = _mm256_div_pd(sum, _mm256_set1_pd(static_cast<double>(n)));
  _mm256_storeu_pd(out, mean);
}

/// Prefix walk eight bins at a stride: sum a whole block, skip it if the
/// target rank lies beyond, refine the final block scalar. Counts are
/// exact either way, so the selected bin is identical to the scalar walk.
__attribute__((target("avx2"))) std::size_t
walk_to_rank(const std::uint32_t* counts, std::size_t bins, std::size_t k,
             std::size_t& cum_out) noexcept {
  std::size_t cum = 0;
  std::size_t b = 0;
  for (; b + 8 <= bins; b += 8) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(counts + b));
    // Horizontal u32 sum of the block (counts fit u32 by construction:
    // total draws per replicate <= bins' index range).
    const __m128i lo = _mm256_castsi256_si128(v);
    const __m128i hi = _mm256_extracti128_si256(v, 1);
    __m128i s = _mm_add_epi32(lo, hi);
    s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0x4e));
    s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0xb1));
    const std::size_t block = static_cast<std::uint32_t>(_mm_cvtsi128_si32(s));
    if (cum + block > k) break;
    cum += block;
  }
  while (cum + counts[b] <= k) cum += counts[b++];
  cum_out = cum;
  return b;
}

__attribute__((target("avx2"))) std::uint32_t rank_select_avx2(const std::uint32_t* counts,
                                                               std::size_t bins,
                                                               std::size_t k) noexcept {
  std::size_t cum = 0;
  return static_cast<std::uint32_t>(walk_to_rank(counts, bins, k, cum));
}

__attribute__((target("avx2"))) SelectedPair rank_select_pair_avx2(
    const std::uint32_t* counts, std::size_t bins, std::size_t k) noexcept {
  std::size_t cum = 0;
  const std::size_t b = walk_to_rank(counts, bins, k, cum);
  SelectedPair out;
  out.kth = static_cast<std::uint32_t>(b);
  if (cum + counts[b] > k + 1) {
    out.next = out.kth;
    return out;
  }
  std::size_t nb = b + 1;
  while (nb < bins && counts[nb] == 0) ++nb;
  out.next = static_cast<std::uint32_t>(nb);
  return out;
}

constexpr Kernels kAvx2Kernels = {
    // The fill's scatter-increment has no AVX2 form; the scalar fill's
    // memset zeroing already vectorizes. Only the table differs.
    Isa::kAvx2, mean_rows4_avx2, histogram_fill_scalar,
    rank_select_avx2, rank_select_pair_avx2,
};

#endif  // SCIBENCH_SIMD_AVX2

// ----------------------------------------------------------- dispatch

Isa probe_host() noexcept {
#if SCIBENCH_SIMD_AVX2
  if (__builtin_cpu_supports("avx2")) return Isa::kAvx2;
#endif
  return Isa::kScalar;
}

/// Env + probe, resolved once. SCIBENCH_SIMD=scalar pins the portable
/// table (the forced-fallback CI job runs the whole suite this way);
/// =avx2 requests it and silently degrades on hosts without it.
Isa default_isa() noexcept {
  static const Isa resolved = [] {
    const Isa host = probe_host();
    if (const char* env = std::getenv("SCIBENCH_SIMD")) {
      if (std::strcmp(env, "scalar") == 0) return Isa::kScalar;
      if (std::strcmp(env, "avx2") == 0) return host;  // capped at host support
    }
    return host;
  }();
  return resolved;
}

// -1 = no override; otherwise the forced Isa.
std::atomic<int> g_forced{-1};

const Kernels& table_for(Isa isa) noexcept {
#if SCIBENCH_SIMD_AVX2
  if (isa == Isa::kAvx2) return kAvx2Kernels;
#endif
  (void)isa;
  return kScalarKernels;
}

}  // namespace

const char* to_string(Isa isa) noexcept {
  switch (isa) {
    case Isa::kScalar: return "scalar";
    case Isa::kAvx2: return "avx2";
  }
  return "?";
}

const Kernels& dispatch() noexcept { return table_for(active_isa()); }

const Kernels& scalar_kernels() noexcept { return kScalarKernels; }

Isa active_isa() noexcept {
  const int forced = g_forced.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<Isa>(forced);
  return default_isa();
}

Isa host_isa() noexcept { return probe_host(); }

void force_isa(Isa isa) noexcept {
  const Isa capped = (isa == Isa::kAvx2 && probe_host() != Isa::kAvx2) ? Isa::kScalar : isa;
  g_forced.store(static_cast<int>(capped), std::memory_order_relaxed);
}

void reset_isa() noexcept { g_forced.store(-1, std::memory_order_relaxed); }

}  // namespace sci::stats::simd
