// Runtime-dispatched SIMD kernels for the stats hot loops.
//
// One binary adapts to the host ISA (SCOPE-style plugin dispatch rather
// than per-target builds): dispatch() probes the CPU once and returns a
// table of function pointers -- an AVX2 set on x86-64 hosts that have
// it, the portable scalar set everywhere else. The contract that makes
// this safe to use under the repo's determinism rules:
//
//   ISA never changes bytes. Every AVX2 kernel performs, per logical
//   lane, exactly the IEEE-754 operation sequence of its scalar twin
//   (vaddpd/vsubpd are per-lane adds; gathers are loads; no FMA
//   contraction, no reassociation), so scalar and SIMD outputs are
//   bit-identical and a result's identity stays keyed on (seed, lanes)
//   only -- never on the machine that computed it. Differential tests
//   in test_stats_parallel.cpp pin this with the ISA forced off.
//
// Overrides, strongest first: force_isa() (tests/benches), the
// SCIBENCH_SIMD environment variable ("scalar" or "avx2", read once),
// then the CPU probe. Requesting an ISA the host lacks falls back to
// scalar.
#pragma once

#include <cstddef>
#include <cstdint>

#include "stats/selection.hpp"  // SelectedPair

namespace sci::stats::simd {

enum class Isa {
  kScalar = 0,
  kAvx2 = 1,
};

[[nodiscard]] const char* to_string(Isa isa) noexcept;

/// The kernel table. All entries are bit-compatible across ISAs (see
/// header comment); pick once per job, not per call.
struct Kernels {
  Isa isa = Isa::kScalar;

  /// Four independent Kahan mean chains over rows r = idx + j*stride,
  /// j in [0, 4): out[j] = Kahan-mean of xs[r_j[i]] in draw order --
  /// the exact op sequence kahan_mean_row performs per row. The AVX2
  /// variant gathers the four rows into one vector per step
  /// (vgatherqpd) and runs the four chains in ymm lanes. Requires all
  /// indices < 2^31 (i32 gather); the engine guards this.
  void (*mean_rows4)(const double* xs, const std::uint32_t* idx, std::size_t n,
                     std::size_t stride, double* out) noexcept;

  /// counts[0..bins) = multiplicity of each value in row[0..m). Values
  /// must be < bins. Zeroes the table first (the vectorizable half of
  /// the fill; the scatter-increment itself is scalar on every ISA
  /// below AVX-512 CD).
  void (*histogram_fill)(const std::uint32_t* row, std::size_t m, std::uint32_t* counts,
                         std::size_t bins) noexcept;

  /// Value (bin index) of the k-th smallest element of the multiset
  /// encoded by `counts`. Requires k < total count. The AVX2 variant
  /// walks the prefix sum eight bins at a time.
  std::uint32_t (*rank_select)(const std::uint32_t* counts, std::size_t bins,
                               std::size_t k) noexcept;

  /// k-th and (k+1)-th smallest in one walk. Requires k + 1 < total.
  SelectedPair (*rank_select_pair)(const std::uint32_t* counts, std::size_t bins,
                                   std::size_t k) noexcept;
};

/// The active kernel table (override > env > CPU probe; cached).
[[nodiscard]] const Kernels& dispatch() noexcept;

/// The portable scalar table, always available (callers that cannot
/// meet an AVX2 precondition, e.g. indices >= 2^31, drop to this).
[[nodiscard]] const Kernels& scalar_kernels() noexcept;

/// ISA dispatch() currently resolves to.
[[nodiscard]] Isa active_isa() noexcept;

/// Highest ISA the host supports.
[[nodiscard]] Isa host_isa() noexcept;

/// Test/bench override; capped at host support. Results must not
/// change -- that is the point of forcing it in differential tests.
void force_isa(Isa isa) noexcept;

/// Clears force_isa(); dispatch() returns to env + CPU probe.
void reset_isa() noexcept;

}  // namespace sci::stats::simd
