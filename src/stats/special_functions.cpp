#include "stats/special_functions.hpp"

#include <cmath>
#include <limits>
#include <numbers>
#include <stdexcept>

namespace sci::stats {
namespace {

constexpr int kMaxIterations = 500;
constexpr double kEpsilon = 1e-15;
constexpr double kTiny = 1e-300;

// P(a,x) by series expansion, valid for x < a + 1.
double gamma_p_series(double a, double x) {
  double ap = a;
  double sum = 1.0 / a;
  double del = sum;
  for (int i = 0; i < kMaxIterations; ++i) {
    ap += 1.0;
    del *= x / ap;
    sum += del;
    if (std::fabs(del) < std::fabs(sum) * kEpsilon) break;
  }
  return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

// Q(a,x) by Lentz continued fraction, valid for x >= a + 1.
double gamma_q_cf(double a, double x) {
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIterations; ++i) {
    const double an = -i * (i - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEpsilon) break;
  }
  return std::exp(-x + a * std::log(x) - std::lgamma(a)) * h;
}

// Continued fraction for the incomplete beta (Numerical Recipes betacf).
double beta_cf(double a, double b, double x) {
  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIterations; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEpsilon) break;
  }
  return h;
}

}  // namespace

double regularized_gamma_p(double a, double x) {
  if (a <= 0.0 || x < 0.0) throw std::domain_error("regularized_gamma_p: a>0, x>=0 required");
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return gamma_p_series(a, x);
  return 1.0 - gamma_q_cf(a, x);
}

double regularized_gamma_q(double a, double x) {
  if (a <= 0.0 || x < 0.0) throw std::domain_error("regularized_gamma_q: a>0, x>=0 required");
  if (x == 0.0) return 1.0;
  if (x < a + 1.0) return 1.0 - gamma_p_series(a, x);
  return gamma_q_cf(a, x);
}

double regularized_beta(double a, double b, double x) {
  if (a <= 0.0 || b <= 0.0) throw std::domain_error("regularized_beta: a,b > 0 required");
  if (x < 0.0 || x > 1.0) throw std::domain_error("regularized_beta: x in [0,1] required");
  if (x == 0.0) return 0.0;
  if (x == 1.0) return 1.0;
  const double ln_front = std::lgamma(a + b) - std::lgamma(a) - std::lgamma(b) +
                          a * std::log(x) + b * std::log1p(-x);
  const double front = std::exp(ln_front);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * beta_cf(a, b, x) / a;
  }
  return 1.0 - front * beta_cf(b, a, 1.0 - x) / b;
}

double normal_pdf(double x) {
  return std::exp(-0.5 * x * x) / std::sqrt(2.0 * std::numbers::pi);
}

double normal_cdf(double x) {
  return 0.5 * std::erfc(-x / std::numbers::sqrt2);
}

double inverse_normal_cdf(double p) {
  if (p <= 0.0 || p >= 1.0) {
    if (p == 0.0) return -std::numeric_limits<double>::infinity();
    if (p == 1.0) return std::numeric_limits<double>::infinity();
    throw std::domain_error("inverse_normal_cdf: p in (0,1) required");
  }
  // Acklam's approximation.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double bq[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                  -1.556989798598866e+02, 6.680131188771972e+01,
                                  -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  double x;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - p_low) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
        (((((bq[0] * r + bq[1]) * r + bq[2]) * r + bq[3]) * r + bq[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log1p(-p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // One Halley refinement step.
  const double e = normal_cdf(x) - p;
  const double u = e * std::sqrt(2.0 * std::numbers::pi) * std::exp(0.5 * x * x);
  return x - u / (1.0 + 0.5 * x * u);
}

double inverse_regularized_beta(double a, double b, double p) {
  if (p <= 0.0) return 0.0;
  if (p >= 1.0) return 1.0;
  // Bisection with Newton acceleration: monotone, always converges.
  double lo = 0.0, hi = 1.0;
  double x = 0.5;
  for (int i = 0; i < 200; ++i) {
    const double f = regularized_beta(a, b, x) - p;
    if (std::fabs(f) < 1e-14) break;
    if (f > 0.0) {
      hi = x;
    } else {
      lo = x;
    }
    // Newton step using the beta density; fall back to bisection when it
    // leaves the bracket.
    const double ln_pdf = (a - 1.0) * std::log(x) + (b - 1.0) * std::log1p(-x) +
                          std::lgamma(a + b) - std::lgamma(a) - std::lgamma(b);
    const double pdf = std::exp(ln_pdf);
    double next = (pdf > 0.0) ? x - f / pdf : 0.5 * (lo + hi);
    if (!(next > lo && next < hi)) next = 0.5 * (lo + hi);
    if (std::fabs(next - x) < 1e-15) {
      x = next;
      break;
    }
    x = next;
  }
  return x;
}

double inverse_regularized_gamma_p(double a, double p) {
  if (p <= 0.0) return 0.0;
  if (p >= 1.0) return std::numeric_limits<double>::infinity();
  // Bracket then bisect/Newton. Initial guess: Wilson-Hilferty.
  const double g = inverse_normal_cdf(p);
  double x = a * std::pow(1.0 - 1.0 / (9.0 * a) + g / (3.0 * std::sqrt(a)), 3.0);
  if (!(x > 0.0) || !std::isfinite(x)) x = a;
  double lo = 0.0;
  double hi = x;
  while (regularized_gamma_p(a, hi) < p) {
    lo = hi;
    hi *= 2.0;
    if (hi > 1e12) break;
  }
  for (int i = 0; i < 200; ++i) {
    x = 0.5 * (lo + hi);
    const double f = regularized_gamma_p(a, x) - p;
    if (std::fabs(f) < 1e-14 || (hi - lo) < 1e-14 * std::max(1.0, x)) break;
    if (f > 0.0) {
      hi = x;
    } else {
      lo = x;
    }
  }
  return x;
}

}  // namespace sci::stats
