// Special functions backing the probability distributions in
// stats/distributions.hpp. Implemented from scratch (Lentz continued
// fractions, Lanczos-free via std::lgamma, Acklam/Wichura-style rational
// approximations) so the library has no external math dependencies.
#pragma once

namespace sci::stats {

/// Regularized lower incomplete gamma P(a, x) = gamma(a,x)/Gamma(a).
/// Domain: a > 0, x >= 0. Accuracy ~1e-12.
[[nodiscard]] double regularized_gamma_p(double a, double x);

/// Regularized upper incomplete gamma Q(a, x) = 1 - P(a, x).
[[nodiscard]] double regularized_gamma_q(double a, double x);

/// Regularized incomplete beta I_x(a, b). Domain: a,b > 0, x in [0,1].
[[nodiscard]] double regularized_beta(double a, double b, double x);

/// Inverse of the standard normal CDF (Acklam's rational approximation
/// with one Halley refinement step; |error| < 1e-13).
[[nodiscard]] double inverse_normal_cdf(double p);

/// Standard normal CDF Phi(x).
[[nodiscard]] double normal_cdf(double x);

/// Standard normal density phi(x).
[[nodiscard]] double normal_pdf(double x);

/// Inverse of regularized incomplete beta: x with I_x(a,b) = p.
[[nodiscard]] double inverse_regularized_beta(double a, double b, double p);

/// Inverse of regularized lower incomplete gamma: x with P(a,x) = p.
[[nodiscard]] double inverse_regularized_gamma_p(double a, double p);

}  // namespace sci::stats
