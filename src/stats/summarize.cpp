#include "stats/summarize.hpp"

#include <stdexcept>

#include "stats/descriptive.hpp"

namespace sci::stats {

Summary summarize(const Cost& cost) {
  return {arithmetic_mean(cost.values), "arithmetic mean", ""};
}

Summary summarize(const Rate& rate) {
  return {harmonic_mean(rate.values), "harmonic mean", ""};
}

Summary summarize(const Ratio& ratio) {
  return {geometric_mean(ratio.values), "geometric mean",
          "Rule 4: ratios should not be averaged; summarize the underlying "
          "costs or rates instead. Geometric mean reported as a documented "
          "last resort."};
}

double rate_from_totals(std::span<const double> work, std::span<const double> time) {
  if (work.size() != time.size() || work.empty())
    throw std::invalid_argument("rate_from_totals: matching non-empty spans required");
  double total_work = 0.0, total_time = 0.0;
  for (std::size_t i = 0; i < work.size(); ++i) {
    total_work += work[i];
    total_time += time[i];
  }
  if (total_time <= 0.0) throw std::domain_error("rate_from_totals: positive time required");
  return total_work / total_time;
}

HplExampleSummary hpl_example_summary(std::span<const double> times, double flops,
                                      double peak_rate) {
  if (times.empty()) throw std::invalid_argument("hpl_example_summary: empty input");
  HplExampleSummary s;
  s.arithmetic_mean_time = arithmetic_mean(times);
  s.rate_from_mean_time = flops / s.arithmetic_mean_time;

  std::vector<double> rates;
  std::vector<double> rel;
  rates.reserve(times.size());
  rel.reserve(times.size());
  for (double t : times) {
    rates.push_back(flops / t);
    rel.push_back(flops / t / peak_rate);
  }
  s.arithmetic_mean_of_rates = arithmetic_mean(rates);
  s.harmonic_mean_of_rates = harmonic_mean(rates);
  s.geometric_mean_of_ratios = geometric_mean(rel);
  return s;
}

}  // namespace sci::stats
