// Rule-aware summarization (Rules 3 & 4).
//
// The paper's Section 3.1.1 assigns a *correct* mean to each measurement
// category:
//   costs  (seconds, joules, flop)  -> arithmetic mean
//   rates  (flop/s, B/s)            -> harmonic mean, or better: mean the
//                                      underlying costs first
//   ratios (speedup, % of peak)     -> never average; geometric mean only
//                                      as a documented last resort
// Encoding the category in a strong type makes the wrong combination
// unrepresentable instead of merely discouraged.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace sci::stats {

/// Measurements with an atomic unit and linear semantics (Section 3.1.1).
struct Cost {
  std::vector<double> values;
  std::string unit;  ///< e.g. "s", "J", "flop"
};

/// Derived cost-per-cost measures, e.g. flop/s.
struct Rate {
  std::vector<double> values;
  std::string unit;  ///< e.g. "flop/s"
};

/// Dimensionless normalized measures, e.g. speedup or fraction of peak.
struct Ratio {
  std::vector<double> values;
};

struct Summary {
  double value = 0.0;
  const char* method = "";  ///< "arithmetic mean" / "harmonic mean" / "geometric mean"
  std::string advisory;     ///< non-empty when the summary is a documented compromise
};

/// Rule 3: costs are summarized with the arithmetic mean.
[[nodiscard]] Summary summarize(const Cost& cost);

/// Rule 3: rates are summarized with the harmonic mean.
[[nodiscard]] Summary summarize(const Rate& rate);

/// Rule 4: ratios get the geometric mean plus a mandatory advisory that
/// averaging the underlying costs/rates is the correct approach.
[[nodiscard]] Summary summarize(const Ratio& ratio);

/// The preferred path for rates (Section 3.1.1 "if the absolute counts
/// are available"): total work over total time, equal-weight runs.
/// Equals the harmonic mean of per-run rates when work_per_run is
/// constant.
[[nodiscard]] double rate_from_totals(std::span<const double> work,
                                      std::span<const double> time);

/// Reproduces the paper's HPL worked example (Section 3.1.1): given
/// per-run times for a fixed flop count, returns the three candidate
/// summaries so callers/report code can show why they differ.
struct HplExampleSummary {
  double arithmetic_mean_time = 0.0;   ///< correct cost summary
  double rate_from_mean_time = 0.0;    ///< correct rate (flop / mean time)
  double arithmetic_mean_of_rates = 0.0;  ///< the *incorrect* rate summary
  double harmonic_mean_of_rates = 0.0;    ///< correct rate summary
  double geometric_mean_of_ratios = 0.0;  ///< the *incorrect* efficiency summary
};
[[nodiscard]] HplExampleSummary hpl_example_summary(std::span<const double> times,
                                                    double flops, double peak_rate);

}  // namespace sci::stats
