#include "survey/survey.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"
#include "stats/special_functions.hpp"

namespace sci::survey {

const char* to_string(DesignClass c) noexcept {
  switch (c) {
    case DesignClass::kProcessor: return "Processor Model / Accelerator";
    case DesignClass::kRam: return "RAM Size / Type / Bus Infos";
    case DesignClass::kNic: return "NIC Model / Network Infos";
    case DesignClass::kCompiler: return "Compiler Version / Flags";
    case DesignClass::kKernelLibraries: return "Kernel / Libraries Version";
    case DesignClass::kFilesystem: return "Filesystem / Storage";
    case DesignClass::kSoftwareInput: return "Software and Input";
    case DesignClass::kMeasurementSetup: return "Measurement Setup";
    case DesignClass::kCodeAvailable: return "Code Available Online";
  }
  return "unknown";
}

const char* to_string(AnalysisClass c) noexcept {
  switch (c) {
    case AnalysisClass::kMean: return "Mean";
    case AnalysisClass::kBestWorst: return "Best / Worst Performance";
    case AnalysisClass::kRankBased: return "Rank Based Statistics";
    case AnalysisClass::kVariation: return "Measure of Variation";
  }
  return "unknown";
}

TextFindings text_findings() noexcept { return {}; }

std::size_t PaperRecord::design_score() const noexcept {
  std::size_t score = 0;
  for (bool b : design) score += b ? 1 : 0;
  return score;
}

namespace {

std::vector<PaperRecord> build_records() {
  std::vector<PaperRecord> records;
  records.reserve(kTotalPapers);
  for (std::size_t conf = 0; conf < kConferences; ++conf) {
    for (int year : kYears) {
      for (std::size_t i = 0; i < kPapersPerCell; ++i) {
        PaperRecord r;
        r.conference = conf;
        r.year = year;
        records.push_back(r);
      }
    }
  }

  rng::Xoshiro256 gen(0x5c15'7ab1e);  // fixed: the matrix is data, not noise

  // 25 not-applicable papers, spread over all cells: two per cell plus
  // one extra in the first cell (25 = 2*12 + 1).
  std::size_t na_left = kTotalPapers - kApplicablePapers;
  for (std::size_t cell = 0; cell < 12 && na_left > 0; ++cell) {
    const std::size_t base = cell * kPapersPerCell;
    const std::size_t in_cell = (cell == 0) ? 3 : 2;
    for (std::size_t k = 0; k < in_cell && na_left > 0; ++k) {
      records[base + rng::uniform_below(gen, kPapersPerCell)].applicable = false;
      --na_left;
    }
  }
  // uniform_below can repeat; repair to the exact count deterministically.
  auto na_count = [&] {
    return static_cast<std::size_t>(
        std::count_if(records.begin(), records.end(),
                      [](const PaperRecord& r) { return !r.applicable; }));
  };
  std::size_t idx = 0;
  while (na_count() < kTotalPapers - kApplicablePapers) {
    if (records[idx % kTotalPapers].applicable) records[idx % kTotalPapers].applicable = false;
    idx += 7;  // co-prime stride: spreads repairs over cells
  }

  // Latent per-paper "diligence": diligent papers document more classes.
  std::vector<std::size_t> applicable_idx;
  std::vector<double> diligence;
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (records[i].applicable) {
      applicable_idx.push_back(i);
      diligence.push_back(rng::uniform01(gen));
    }
  }

  // For each class, mark exactly `total` applicable papers, preferring
  // diligent ones: weight w = diligence + noise, take the top `total`.
  auto assign = [&](std::size_t total, auto setter) {
    std::vector<std::pair<double, std::size_t>> weighted;
    weighted.reserve(applicable_idx.size());
    for (std::size_t k = 0; k < applicable_idx.size(); ++k) {
      weighted.emplace_back(diligence[k] + rng::normal(gen, 0.0, 0.35), applicable_idx[k]);
    }
    std::sort(weighted.begin(), weighted.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    for (std::size_t k = 0; k < total; ++k) setter(records[weighted[k].second]);
  };

  const auto d_totals = design_totals();
  for (std::size_t c = 0; c < kDesignClasses; ++c) {
    assign(d_totals[c], [c](PaperRecord& r) { r.design[c] = true; });
  }
  const auto a_totals = analysis_totals();
  for (std::size_t c = 0; c < kAnalysisClasses; ++c) {
    assign(a_totals[c], [c](PaperRecord& r) { r.analysis[c] = true; });
  }
  return records;
}

}  // namespace

const std::vector<PaperRecord>& survey_records() {
  static const std::vector<PaperRecord> records = build_records();
  return records;
}

std::size_t count_design(DesignClass c) {
  std::size_t count = 0;
  for (const auto& r : survey_records()) {
    if (r.applicable && r.design[static_cast<std::size_t>(c)]) ++count;
  }
  return count;
}

std::size_t count_analysis(AnalysisClass c) {
  std::size_t count = 0;
  for (const auto& r : survey_records()) {
    if (r.applicable && r.analysis[static_cast<std::size_t>(c)]) ++count;
  }
  return count;
}

stats::BoxStats cell_score_stats(std::size_t conference, int year) {
  std::vector<double> scores;
  for (const auto& r : survey_records()) {
    if (r.conference == conference && r.year == year && r.applicable) {
      scores.push_back(static_cast<double>(r.design_score()));
    }
  }
  return stats::box_stats(scores);
}

std::vector<double> conference_median_by_year(std::size_t conference) {
  std::vector<double> medians;
  for (int year : kYears) {
    medians.push_back(cell_score_stats(conference, year).median);
  }
  return medians;
}

TrendResult mann_kendall(std::span<const double> series) {
  const std::size_t n = series.size();
  TrendResult out;
  if (n < 3) return out;
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double d = series[j] - series[i];
      s += (d > 0.0) - (d < 0.0);
    }
  }
  out.s_statistic = s;
  const auto nd = static_cast<double>(n);
  const double var = nd * (nd - 1.0) * (2.0 * nd + 5.0) / 18.0;
  if (var <= 0.0) return out;
  // Continuity-corrected normal approximation.
  double z = 0.0;
  if (s > 0.0) z = (s - 1.0) / std::sqrt(var);
  if (s < 0.0) z = (s + 1.0) / std::sqrt(var);
  out.p_value = 2.0 * (1.0 - stats::normal_cdf(std::fabs(z)));
  return out;
}

}  // namespace sci::survey
