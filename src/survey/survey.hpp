// The paper's literature survey (Section 2, Table 1): a stratified
// sample of 120 papers from three anonymized conferences (2011-2014),
// scored on nine experimental-design documentation classes and four
// data-analysis practices.
//
// The published table's per-paper check marks are not machine-readable
// in the source we reproduce from, so survey_records() *synthesizes* a
// per-paper matrix that matches every published marginal exactly:
// 25/120 papers not applicable, and the per-class totals
// (79, 26, 60, 35, 20, 12, 48, 30, 7)/95 for design and
// (51, 13, 9, 17)/95 for analysis. A per-paper "diligence" latent
// variable correlates the classes, giving realistic per-year spreads
// for the box-plot summaries Table 1 shows. See DESIGN.md.
#pragma once

#include <array>
#include <cstddef>
#include <string>
#include <vector>

#include "stats/descriptive.hpp"

namespace sci::survey {

inline constexpr std::size_t kDesignClasses = 9;
inline constexpr std::size_t kAnalysisClasses = 4;
inline constexpr std::size_t kConferences = 3;
inline constexpr std::array<int, 4> kYears = {2011, 2012, 2013, 2014};
inline constexpr std::size_t kPapersPerCell = 10;
inline constexpr std::size_t kTotalPapers = 120;
inline constexpr std::size_t kApplicablePapers = 95;

/// Design documentation classes, in Table 1 order.
enum class DesignClass : std::size_t {
  kProcessor = 0,        // Processor Model / Accelerator
  kRam = 1,              // RAM Size / Type / Bus Infos
  kNic = 2,              // NIC Model / Network Infos
  kCompiler = 3,         // Compiler Version / Flags
  kKernelLibraries = 4,  // Kernel / Libraries Version
  kFilesystem = 5,       // Filesystem / Storage
  kSoftwareInput = 6,    // Software and Input
  kMeasurementSetup = 7, // Measurement Setup
  kCodeAvailable = 8,    // Code Available Online
};

enum class AnalysisClass : std::size_t {
  kMean = 0,               // Mean
  kBestWorst = 1,          // Best / Worst Performance
  kRankBased = 2,          // Rank Based Statistics
  kVariation = 3,          // Measure of Variation
};

[[nodiscard]] const char* to_string(DesignClass c) noexcept;
[[nodiscard]] const char* to_string(AnalysisClass c) noexcept;

/// Published marginal totals over the 95 applicable papers.
[[nodiscard]] constexpr std::array<std::size_t, kDesignClasses> design_totals() noexcept {
  return {79, 26, 60, 35, 20, 12, 48, 30, 7};
}
[[nodiscard]] constexpr std::array<std::size_t, kAnalysisClasses> analysis_totals() noexcept {
  return {51, 13, 9, 17};
}

/// Additional counts quoted in the paper's text.
struct TextFindings {
  std::size_t papers_reporting_speedup = 39;
  std::size_t speedups_without_base = 15;     // 38% of 39
  std::size_t summarizing_papers = 51;
  std::size_t summaries_specifying_method = 4;
  std::size_t harmonic_mean_users = 1;
  std::size_t geometric_mean_users = 2;
  std::size_t variance_mentions = 15;
  std::size_t ci_reporting_papers = 2;
  std::size_t unambiguous_unit_papers = 2;
};
[[nodiscard]] TextFindings text_findings() noexcept;

struct PaperRecord {
  std::size_t conference = 0;  ///< 0..2 ("ConfA".."ConfC")
  int year = 2011;
  bool applicable = true;
  std::array<bool, kDesignClasses> design{};
  std::array<bool, kAnalysisClasses> analysis{};

  /// Number of satisfied design classes (Table 1's per-paper score 0-9).
  [[nodiscard]] std::size_t design_score() const noexcept;
};

/// The synthesized 120-paper matrix (deterministic).
[[nodiscard]] const std::vector<PaperRecord>& survey_records();

/// Count of papers satisfying a class, over applicable papers.
[[nodiscard]] std::size_t count_design(DesignClass c);
[[nodiscard]] std::size_t count_analysis(AnalysisClass c);

/// Box statistics of per-paper design scores for one conference-year
/// cell (the horizontal box plots of Table 1's upper part).
[[nodiscard]] stats::BoxStats cell_score_stats(std::size_t conference, int year);

/// Median design score per year for one conference.
[[nodiscard]] std::vector<double> conference_median_by_year(std::size_t conference);

/// Mann-Kendall trend test on a short series; returns S statistic and a
/// two-sided normal-approximation p-value. The paper finds no
/// statistically significant improvement over the years.
struct TrendResult {
  double s_statistic = 0.0;
  double p_value = 1.0;
};
[[nodiscard]] TrendResult mann_kendall(std::span<const double> series);

}  // namespace sci::survey
