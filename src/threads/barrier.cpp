#include "threads/barrier.hpp"

#include <stdexcept>
#include <thread>

namespace sci::threads {

SpinBarrier::SpinBarrier(std::size_t parties) : parties_(parties) {
  if (parties == 0) throw std::invalid_argument("SpinBarrier: parties >= 1");
}

void SpinBarrier::arrive_and_wait() noexcept {
  const bool my_sense = !sense_.load(std::memory_order_relaxed);
  if (waiting_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
    // Last arrival: reset the count and flip the sense to release all.
    waiting_.store(0, std::memory_order_relaxed);
    sense_.store(my_sense, std::memory_order_release);
    return;
  }
  // Yielding spin: correct under oversubscription.
  while (sense_.load(std::memory_order_acquire) != my_sense) {
    std::this_thread::yield();
  }
}

}  // namespace sci::threads
