// Sense-reversing centralized spin barrier for real threads.
//
// LibSciBench "offers a window-based synchronization mechanism for
// OpenMP and MPI"; this is the shared-memory half of that substrate.
// The barrier yields while spinning so it behaves on oversubscribed
// machines (including the single-core CI box this repo is developed on).
#pragma once

#include <atomic>
#include <cstddef>

namespace sci::threads {

class SpinBarrier {
 public:
  explicit SpinBarrier(std::size_t parties);

  SpinBarrier(const SpinBarrier&) = delete;
  SpinBarrier& operator=(const SpinBarrier&) = delete;

  /// Blocks until all parties arrive. Reusable across rounds.
  void arrive_and_wait() noexcept;

  [[nodiscard]] std::size_t parties() const noexcept { return parties_; }

 private:
  const std::size_t parties_;
  std::atomic<std::size_t> waiting_{0};
  std::atomic<bool> sense_{false};
};

}  // namespace sci::threads
