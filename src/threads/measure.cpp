#include "threads/measure.hpp"

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <thread>

#include "threads/barrier.hpp"
#include "threads/team.hpp"
#include "timer/timer.hpp"

namespace sci::threads {

std::vector<double> ThreadedMeasurement::thread_series(std::size_t thread) const {
  std::vector<double> out;
  out.reserve(times_ns.size());
  for (const auto& row : times_ns) out.push_back(row.at(thread));
  return out;
}

std::vector<double> ThreadedMeasurement::max_across_threads() const {
  std::vector<double> out;
  out.reserve(times_ns.size());
  for (const auto& row : times_ns) {
    out.push_back(*std::max_element(row.begin(), row.end()));
  }
  return out;
}

ThreadedMeasurement measure_threaded(const std::function<void(std::size_t)>& kernel,
                                     const ThreadedMeasurementOptions& options) {
  if (!kernel) throw std::invalid_argument("measure_threaded: null kernel");
  if (options.threads == 0 || options.iterations == 0)
    throw std::invalid_argument("measure_threaded: threads, iterations >= 1");

  const std::size_t total = options.iterations + options.warmup;
  const std::size_t nthreads = options.threads;

  ThreadedMeasurement result;
  result.times_ns.assign(options.iterations, std::vector<double>(nthreads, 0.0));
  result.start_skew_ns.assign(options.iterations, 0.0);
  std::vector<std::vector<double>> starts(options.iterations,
                                          std::vector<double>(nthreads, 0.0));

  const timer::SteadyClock clock;  // one shared clock: threads share time
  SpinBarrier barrier(nthreads);
  std::atomic<double> deadline_ns{0.0};

  ThreadTeam team(nthreads);
  team.run([&](std::size_t id) {
    for (std::size_t i = 0; i < total; ++i) {
      barrier.arrive_and_wait();
      if (id == 0) {
        deadline_ns.store(clock.now_ns() + options.window_s * 1e9,
                          std::memory_order_release);
      }
      barrier.arrive_and_wait();
      const double deadline = deadline_ns.load(std::memory_order_acquire);
      // Delay window: spin (yielding) until the shared deadline.
      while (clock.now_ns() < deadline) std::this_thread::yield();

      const double t0 = clock.now_ns();
      kernel(id);
      const double t1 = clock.now_ns();
      if (i >= options.warmup) {
        const std::size_t slot = i - options.warmup;
        starts[slot][id] = t0;
        result.times_ns[slot][id] = t1 - t0;
      }
    }
  });

  for (std::size_t i = 0; i < options.iterations; ++i) {
    const auto [lo, hi] = std::minmax_element(starts[i].begin(), starts[i].end());
    result.start_skew_ns[i] = *hi - *lo;
  }
  return result;
}

}  // namespace sci::threads
