// Threaded measurement driver: the shared-memory analogue of the
// simulated-MPI reduce benchmark. Every iteration,
//   1. the team meets at a barrier,
//   2. thread 0 publishes a real-time start deadline one window ahead
//      (the paper's delay-window scheme, Section 4.2.1 -- threads share
//      a clock, so the window only needs to cover barrier-exit skew),
//   3. each thread spins until the deadline, then times the kernel.
// Returns the per-thread sample matrix so Rule 10 analyses (ANOVA
// across threads, max-vs-median summaries) run on real data.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace sci::threads {

struct ThreadedMeasurementOptions {
  std::size_t threads = 2;
  std::size_t iterations = 100;
  std::size_t warmup = 3;
  double window_s = 200e-6;  ///< start deadline distance past the barrier
};

struct ThreadedMeasurement {
  /// times_ns[i][t]: duration of iteration i on thread t.
  std::vector<std::vector<double>> times_ns;
  /// start_skew_ns[i]: spread of actual kernel-start times in iteration i
  /// (how well the window scheme synchronized the team).
  std::vector<double> start_skew_ns;

  [[nodiscard]] std::vector<double> thread_series(std::size_t thread) const;
  [[nodiscard]] std::vector<double> max_across_threads() const;
};

/// Measures `kernel(thread_id)` on a fresh team. The kernel runs
/// `iterations + warmup` times per thread; warmup iterations are
/// discarded.
[[nodiscard]] ThreadedMeasurement measure_threaded(
    const std::function<void(std::size_t)>& kernel,
    const ThreadedMeasurementOptions& options = {});

}  // namespace sci::threads
