#include "threads/team.hpp"

#include <stdexcept>

namespace sci::threads {

ThreadTeam::ThreadTeam(std::size_t size) {
  if (size == 0) throw std::invalid_argument("ThreadTeam: size >= 1");
  workers_.reserve(size);
  for (std::size_t id = 0; id < size; ++id) {
    workers_.emplace_back([this, id] { worker_loop(id); });
  }
}

ThreadTeam::~ThreadTeam() {
  {
    const std::lock_guard lock(mutex_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadTeam::run(const std::function<void(std::size_t)>& region) {
  std::unique_lock lock(mutex_);
  if (running_ != 0) throw std::logic_error("ThreadTeam::run: region already active");
  first_error_ = nullptr;
  region_ = &region;
  running_ = workers_.size();
  ++generation_;
  cv_.notify_all();
  cv_.wait(lock, [this] { return running_ == 0; });
  region_ = nullptr;
  if (first_error_) std::rethrow_exception(first_error_);
}

void ThreadTeam::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& body) {
  if (end <= begin) return;
  const std::size_t total = end - begin;
  const std::size_t parties = workers_.size();
  run([&](std::size_t id) {
    // Static chunking, contiguous ranges.
    const std::size_t chunk = (total + parties - 1) / parties;
    const std::size_t lo = begin + id * chunk;
    const std::size_t hi = std::min(end, lo + chunk);
    for (std::size_t i = lo; i < hi; ++i) body(i);
  });
}

void ThreadTeam::worker_loop(std::size_t id) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(std::size_t)>* region = nullptr;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) return;
      seen = generation_;
      region = region_;
    }
    try {
      (*region)(id);
    } catch (...) {
      const std::lock_guard lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      const std::lock_guard lock(mutex_);
      if (--running_ == 0) cv_.notify_all();
    }
  }
}

}  // namespace sci::threads
