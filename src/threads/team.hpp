// A fixed team of worker threads with fork-join semantics -- the
// minimal OpenMP-parallel-region substrate the measurement layer needs.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sci::threads {

/// Spawns `size` long-lived workers; run() executes a region on all of
/// them (worker 0..size-1) and joins. Exceptions from workers propagate
/// out of run() (first one wins).
class ThreadTeam {
 public:
  explicit ThreadTeam(std::size_t size);
  ~ThreadTeam();

  ThreadTeam(const ThreadTeam&) = delete;
  ThreadTeam& operator=(const ThreadTeam&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Runs `region(thread_id)` on every worker; returns when all finish.
  void run(const std::function<void(std::size_t)>& region);

  /// Static-chunked parallel for over [begin, end).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body);

 private:
  void worker_loop(std::size_t id);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable cv_;
  const std::function<void(std::size_t)>* region_ = nullptr;
  std::uint64_t generation_ = 0;
  std::size_t running_ = 0;
  bool shutdown_ = false;
  std::exception_ptr first_error_;
};

}  // namespace sci::threads
