#include "timer/calibration.hpp"

#include <vector>

#include "stats/descriptive.hpp"

namespace sci::timer {

Calibration calibrate(const Clock& clock, std::size_t samples) {
  Calibration cal;
  cal.clock_name = std::string(clock.name());
  cal.samples = samples;

  std::vector<double> deltas;
  deltas.reserve(samples);
  double resolution = 0.0;
  double prev = clock.now_ns();
  for (std::size_t i = 0; i < samples; ++i) {
    const double cur = clock.now_ns();
    const double d = cur - prev;
    if (d > 0.0) {
      deltas.push_back(d);
      if (resolution == 0.0 || d < resolution) resolution = d;
    }
    prev = cur;
  }
  cal.resolution_ns = resolution;
  // Median of positive deltas approximates the per-call overhead when the
  // clock ticks faster than the call (common for TSC); for coarse clocks
  // most deltas are 0 and the resolution dominates instead.
  cal.overhead_ns = deltas.empty() ? 0.0 : sci::stats::median(deltas);
  return cal;
}

IntervalCheck check_interval(const Calibration& cal, double interval_ns,
                             double max_overhead_fraction, double precision_factor) {
  IntervalCheck check;
  check.overhead_ok = cal.overhead_ns < max_overhead_fraction * interval_ns;
  check.precision_ok = cal.resolution_ns * precision_factor <= interval_ns;
  if (!check.overhead_ok) {
    check.message += "timer overhead (" + std::to_string(cal.overhead_ns) +
                     " ns) exceeds " + std::to_string(max_overhead_fraction * 100.0) +
                     "% of the measured interval; measure multiple events per interval. ";
  }
  if (!check.precision_ok) {
    check.message += "timer resolution (" + std::to_string(cal.resolution_ns) +
                     " ns) is too coarse for the interval (want " +
                     std::to_string(precision_factor) + "x finer).";
  }
  return check;
}

}  // namespace sci::timer
