// Timer self-characterisation: LibSciBench "automatically reports the
// timer resolution and overhead on the target architecture" and warns
// when the measured interval is too short for either (Section 4.2.1:
// overhead < 5% of the interval, precision 10x finer).
#pragma once

#include <cstddef>
#include <string>

#include "timer/timer.hpp"

namespace sci::timer {

struct Calibration {
  std::string clock_name;
  double resolution_ns = 0.0;  ///< smallest observed positive increment
  double overhead_ns = 0.0;    ///< median cost of one now_ns() call
  std::size_t samples = 0;
};

/// Measures resolution (smallest positive delta between consecutive
/// readings) and per-call overhead (median of back-to-back read costs).
[[nodiscard]] Calibration calibrate(const Clock& clock, std::size_t samples = 10000);

/// Rule-of-thumb admission checks from Section 4.2.1.
struct IntervalCheck {
  bool overhead_ok = false;   ///< overhead < max_overhead_fraction * interval
  bool precision_ok = false;  ///< resolution * precision_factor <= interval
  std::string message;        ///< human-readable warning when either fails
};

[[nodiscard]] IntervalCheck check_interval(const Calibration& cal, double interval_ns,
                                           double max_overhead_fraction = 0.05,
                                           double precision_factor = 10.0);

}  // namespace sci::timer
