#include "timer/counters.hpp"

namespace sci::timer {

void CounterSet::start() {
  start_values_.clear();
  start_values_.reserve(providers_.size());
  for (const auto& p : providers_) start_values_.push_back(p->read());
}

std::vector<CounterSet::Reading> CounterSet::stop() const {
  std::vector<Reading> readings;
  readings.reserve(providers_.size());
  for (std::size_t i = 0; i < providers_.size(); ++i) {
    const std::uint64_t before = (i < start_values_.size()) ? start_values_[i] : 0;
    readings.push_back({std::string(providers_[i]->name()), providers_[i]->read() - before});
  }
  return readings;
}

}  // namespace sci::timer
