// Counter provider abstraction. LibSciBench "has support for arbitrary
// PAPI counters"; PAPI is not available here, so the same API is served
// by (a) a software flop/instruction accounting provider that
// instrumented kernels tick explicitly, and (b) the wall-clock provider.
// Downstream code (harness, reports) is agnostic to the source.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace sci::timer {

/// A named monotonically increasing event counter.
class CounterProvider {
 public:
  virtual ~CounterProvider() = default;
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
  [[nodiscard]] virtual std::uint64_t read() const noexcept = 0;
};

/// Software counter: kernels call add() where a PAPI-instrumented build
/// would count hardware events. Thread-compatible (not thread-safe; one
/// instance per measuring thread, merged by the harness).
class SoftwareCounter final : public CounterProvider {
 public:
  explicit SoftwareCounter(std::string name) : name_(std::move(name)) {}
  void add(std::uint64_t events) noexcept { value_ += events; }
  void reset() noexcept { value_ = 0; }
  [[nodiscard]] std::string_view name() const noexcept override { return name_; }
  [[nodiscard]] std::uint64_t read() const noexcept override { return value_; }

 private:
  std::string name_;
  std::uint64_t value_ = 0;
};

/// Interval sample over a set of counters: read-before / read-after.
class CounterSet {
 public:
  void attach(std::shared_ptr<CounterProvider> provider) {
    providers_.push_back(std::move(provider));
  }
  [[nodiscard]] std::size_t size() const noexcept { return providers_.size(); }

  struct Reading {
    std::string name;
    std::uint64_t delta = 0;
  };

  void start();
  [[nodiscard]] std::vector<Reading> stop() const;

 private:
  std::vector<std::shared_ptr<CounterProvider>> providers_;
  std::vector<std::uint64_t> start_values_;
};

}  // namespace sci::timer
