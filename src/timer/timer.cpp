#include "timer/timer.hpp"

#include <ctime>

#if defined(__x86_64__)
#include <x86intrin.h>
#endif

namespace sci::timer {

double SteadyClock::now_ns() const noexcept {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<double>(ts.tv_sec) * 1e9 + static_cast<double>(ts.tv_nsec);
}

std::uint64_t TscClock::raw_ticks() noexcept {
#if defined(__x86_64__)
  _mm_lfence();  // serialize: do not let the load window drift past rdtsc
  const std::uint64_t t = __rdtsc();
  _mm_lfence();
  return t;
#else
  return 0;
#endif
}

TscClock::TscClock() {
#if defined(__x86_64__)
  // Calibrate ticks -> ns against the steady clock over a short spin.
  const SteadyClock steady;
  const double t0_ns = steady.now_ns();
  const std::uint64_t t0 = raw_ticks();
  // ~2 ms calibration window: long enough for <0.1% period error.
  while (steady.now_ns() - t0_ns < 2e6) {
  }
  const double t1_ns = steady.now_ns();
  const std::uint64_t t1 = raw_ticks();
  if (t1 > t0) {
    ns_per_tick_ = (t1_ns - t0_ns) / static_cast<double>(t1 - t0);
    base_ticks_ = t1;
    base_ns_ = t1_ns;
  }
#endif
}

double TscClock::now_ns() const noexcept {
  if (ns_per_tick_ > 0.0) {
    const std::uint64_t t = raw_ticks();
    return base_ns_ + static_cast<double>(t - base_ticks_) * ns_per_tick_;
  }
  return SteadyClock{}.now_ns();
}

}  // namespace sci::timer
