// High-resolution timers (Section 6 "Timers": LibSciBench offers
// high-resolution timers and automatically reports resolution and
// overhead on the target architecture).
//
// Two clock sources:
//   - TscTimer: raw time-stamp counter with lfence serialization
//     (x86-64; falls back to the steady clock elsewhere);
//   - SteadyTimer: clock_gettime(CLOCK_MONOTONIC_RAW / MONOTONIC).
// Both report in nanoseconds through a common interface.
#pragma once

#include <cstdint>
#include <string_view>

namespace sci::timer {

/// Abstract nanosecond clock. Implementations must be monotonic.
class Clock {
 public:
  virtual ~Clock() = default;
  /// Current reading in nanoseconds from an arbitrary epoch.
  [[nodiscard]] virtual double now_ns() const noexcept = 0;
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
};

/// clock_gettime(CLOCK_MONOTONIC) based clock; always available.
class SteadyClock final : public Clock {
 public:
  [[nodiscard]] double now_ns() const noexcept override;
  [[nodiscard]] std::string_view name() const noexcept override { return "steady"; }
};

/// Serialized rdtsc; calibrated against the steady clock at construction
/// to convert ticks to nanoseconds. On non-x86-64 builds the steady
/// clock is used transparently.
class TscClock final : public Clock {
 public:
  TscClock();
  [[nodiscard]] double now_ns() const noexcept override;
  [[nodiscard]] std::string_view name() const noexcept override { return "tsc"; }
  /// Calibrated tick period; 0 when the TSC is unavailable.
  [[nodiscard]] double ns_per_tick() const noexcept { return ns_per_tick_; }

  /// Raw serialized tick count (0 when unavailable).
  [[nodiscard]] static std::uint64_t raw_ticks() noexcept;

 private:
  double ns_per_tick_ = 0.0;
  double base_ns_ = 0.0;
  std::uint64_t base_ticks_ = 0;
};

/// RAII interval measurement against any Clock.
class Stopwatch {
 public:
  explicit Stopwatch(const Clock& clock) noexcept : clock_(&clock), start_(clock.now_ns()) {}
  void restart() noexcept { start_ = clock_->now_ns(); }
  [[nodiscard]] double elapsed_ns() const noexcept { return clock_->now_ns() - start_; }
  [[nodiscard]] double elapsed_s() const noexcept { return elapsed_ns() * 1e-9; }

 private:
  const Clock* clock_;
  double start_;
};

}  // namespace sci::timer
