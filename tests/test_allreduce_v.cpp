#include <gtest/gtest.h>

#include <vector>

#include "sim/machine.hpp"
#include "simmpi/collectives.hpp"
#include "simmpi/comm.hpp"

namespace sci::simmpi {
namespace {

std::vector<double> expected_sum(int p, std::size_t n) {
  // values[r][i] = r + i: sum over r = p(p-1)/2 + p*i.
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = p * (p - 1) / 2.0 + static_cast<double>(p) * static_cast<double>(i);
  }
  return out;
}

struct VCase {
  int p;
  std::size_t n;
  AllreduceAlgo algo;
};

class AllreduceV : public ::testing::TestWithParam<VCase> {};

TEST_P(AllreduceV, ComputesElementwiseSumEverywhere) {
  const auto [p, n, algo] = GetParam();
  World world(sim::make_daint(), p, 3000 + p + static_cast<int>(n));
  std::vector<std::vector<double>> results(p);
  world.launch([&, n, algo](Comm& c) -> sim::Task<void> {
    std::vector<double> mine(n);
    for (std::size_t i = 0; i < n; ++i) mine[i] = c.rank() + static_cast<double>(i);
    results[c.rank()] = co_await allreduce_v(c, std::move(mine), ReduceOp::kSum, algo);
  });
  world.run();
  const auto want = expected_sum(p, n);
  for (int r = 0; r < p; ++r) EXPECT_EQ(results[r], want) << "rank " << r;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, AllreduceV,
    ::testing::Values(VCase{2, 16, AllreduceAlgo::kRecursiveDoubling},
                      VCase{5, 16, AllreduceAlgo::kRecursiveDoubling},
                      VCase{8, 1024, AllreduceAlgo::kRecursiveDoubling},
                      VCase{2, 16, AllreduceAlgo::kRing},
                      VCase{3, 10, AllreduceAlgo::kRing},
                      VCase{5, 17, AllreduceAlgo::kRing},  // uneven chunks
                      VCase{8, 1024, AllreduceAlgo::kRing},
                      VCase{13, 64, AllreduceAlgo::kRing},
                      VCase{16, 4096, AllreduceAlgo::kAuto},
                      VCase{7, 3, AllreduceAlgo::kRing} /* falls back: n < p */),
    [](const auto& tpi) {
      const char* algo = tpi.param.algo == AllreduceAlgo::kRing ? "ring"
                         : tpi.param.algo == AllreduceAlgo::kAuto ? "auto"
                                                                   : "rd";
      return std::string(algo) + "_p" + std::to_string(tpi.param.p) + "_n" +
             std::to_string(tpi.param.n);
    });

TEST(AllreduceVAlgo, AlgorithmsAgreeBitExactlyOnMinMax) {
  constexpr int kP = 6;
  for (auto algo : {AllreduceAlgo::kRecursiveDoubling, AllreduceAlgo::kRing}) {
    World world(sim::make_pilatus(), kP, 42);
    std::vector<std::vector<double>> results(kP);
    world.launch([&, algo](Comm& c) -> sim::Task<void> {
      std::vector<double> mine(12);
      for (std::size_t i = 0; i < mine.size(); ++i) {
        mine[i] = (c.rank() % 2 ? 1.0 : -1.0) * static_cast<double>(i * (c.rank() + 1));
      }
      results[c.rank()] = co_await allreduce_v(c, std::move(mine), ReduceOp::kMax, algo);
    });
    world.run();
    for (int r = 1; r < kP; ++r) EXPECT_EQ(results[r], results[0]);
  }
}

TEST(AllreduceVAlgo, RingFasterForLargePayloads) {
  // The crossover that motivates the algorithm switch: at 1 MiB on 16
  // ranks the ring's 2(p-1)/p bandwidth term beats doubling's log2(p)
  // full-vector exchanges.
  constexpr int kP = 16;
  constexpr std::size_t kN = 1 << 17;  // 1 MiB of doubles
  auto timed = [&](AllreduceAlgo algo) {
    World world(sim::make_noiseless(64), kP, 9);
    double finish = 0.0;
    world.launch([&, algo](Comm& c) -> sim::Task<void> {
      std::vector<double> mine(kN, 1.0);
      (void)co_await allreduce_v(c, std::move(mine), ReduceOp::kSum, algo);
      finish = std::max(finish, c.world().engine().now());
    });
    world.run();
    return finish;
  };
  EXPECT_LT(timed(AllreduceAlgo::kRing),
            timed(AllreduceAlgo::kRecursiveDoubling));
}

TEST(AllreduceVAlgo, DoublingFasterForTinyPayloads) {
  constexpr int kP = 16;
  auto timed = [&](AllreduceAlgo algo) {
    World world(sim::make_noiseless(64), kP, 10);
    double finish = 0.0;
    world.launch([&, algo](Comm& c) -> sim::Task<void> {
      std::vector<double> mine(16, 1.0);
      (void)co_await allreduce_v(c, std::move(mine), ReduceOp::kSum, algo);
      finish = std::max(finish, c.world().engine().now());
    });
    world.run();
    return finish;
  };
  EXPECT_LT(timed(AllreduceAlgo::kRecursiveDoubling), timed(AllreduceAlgo::kRing));
}

TEST(AllreduceVAlgo, SingleRankAndValidation) {
  World world(sim::make_noiseless(4), 1, 11);
  world.launch([](Comm& c) -> sim::Task<void> {
    std::vector<double> one(3, 5.0);
    auto out = co_await allreduce_v(c, std::move(one));
    EXPECT_EQ(out, std::vector<double>(3, 5.0));
  });
  world.run();
}

TEST(Machines, BgqPresetIsQuietTorus) {
  const auto bgq = sim::make_bgq();
  EXPECT_EQ(bgq.name, "bgq");
  EXPECT_EQ(bgq.topology->node_count(), 512u);
  // Much quieter than daint: lower jitter, rarer detours.
  const auto daint = sim::make_daint();
  EXPECT_LT(bgq.compute_noise.rel_jitter, 0.1 * daint.compute_noise.rel_jitter);
  EXPECT_LT(bgq.compute_noise.detour_rate, 0.01 * daint.compute_noise.detour_rate);
  EXPECT_EQ(sim::make_machine("bgq").name, "bgq");
}

}  // namespace
}  // namespace sci::simmpi
