#include <gtest/gtest.h>

#include <algorithm>

#include "sim/machine.hpp"
#include "simmpi/benchmarks.hpp"
#include "stats/descriptive.hpp"

namespace sci::simmpi {
namespace {

TEST(PingPong, DeterministicForFixedSeed) {
  const auto machine = sim::make_dora();
  const auto a = pingpong_latency(machine, 500, 64, 42);
  const auto b = pingpong_latency(machine, 500, 64, 42);
  EXPECT_EQ(a, b);
  const auto c = pingpong_latency(machine, 500, 64, 43);
  EXPECT_NE(a, c);
}

TEST(PingPong, WarmupDiscarded) {
  const auto machine = sim::make_dora();
  EXPECT_EQ(pingpong_latency(machine, 100, 64, 1, /*warmup=*/16).size(), 100u);
  EXPECT_EQ(pingpong_latency(machine, 100, 64, 1, /*warmup=*/0).size(), 100u);
}

TEST(PingPong, DoraCalibrationBracket) {
  // The simulated Piz Dora must land in the paper's Figure 3 scale:
  // min ~1.57 us, median ~1.77 us.
  const auto s = pingpong_latency(sim::make_dora(), 20000, 64, 7);
  const double min_us = stats::min_value(s) * 1e6;
  const double med_us = stats::median(s) * 1e6;
  EXPECT_GT(min_us, 1.3);
  EXPECT_LT(min_us, 1.8);
  EXPECT_GT(med_us, 1.55);
  EXPECT_LT(med_us, 2.05);
}

TEST(PingPong, PilatusHeavierTailThanDora) {
  // Figure 3/4 structure: Pilatus has the lower floor but the heavier
  // tail; Dora is tighter.
  const auto dora = pingpong_latency(sim::make_dora(), 30000, 64, 9);
  const auto pilatus = pingpong_latency(sim::make_pilatus(), 30000, 64, 9);
  EXPECT_LT(stats::min_value(pilatus), stats::min_value(dora));
  EXPECT_GT(stats::quantile(pilatus, 0.99), stats::quantile(dora, 0.99));
  // Mean: Pilatus slower on average (paper: +0.108 us).
  EXPECT_GT(stats::arithmetic_mean(pilatus), stats::arithmetic_mean(dora));
}

TEST(PingPong, RightSkewedDistribution) {
  const auto s = pingpong_latency(sim::make_dora(), 20000, 64, 11);
  EXPECT_GT(stats::skewness(s), 0.5);
  EXPECT_GT(stats::arithmetic_mean(s), stats::median(s));
}

TEST(PingPong, LargerMessagesSlower) {
  const auto small = pingpong_latency(sim::make_dora(), 2000, 64, 13);
  const auto big = pingpong_latency(sim::make_dora(), 2000, 1 << 20, 13);
  EXPECT_GT(stats::median(big), 2.0 * stats::median(small));
}

TEST(ReduceBench, ShapesAndDeterminism) {
  const auto machine = sim::make_daint();
  const auto r = reduce_bench(machine, 8, 50, 21);
  EXPECT_EQ(r.times.size(), 50u);
  EXPECT_EQ(r.times[0].size(), 8u);
  EXPECT_EQ(r.max_across_ranks().size(), 50u);
  EXPECT_EQ(r.rank_series(3).size(), 50u);
  const auto r2 = reduce_bench(machine, 8, 50, 21);
  EXPECT_EQ(r.times, r2.times);
}

TEST(ReduceBench, MaxDominatesEachRank) {
  const auto r = reduce_bench(sim::make_daint(), 8, 30, 22);
  const auto mx = r.max_across_ranks();
  for (int rank = 0; rank < 8; ++rank) {
    const auto series = r.rank_series(rank);
    for (std::size_t i = 0; i < series.size(); ++i) EXPECT_LE(series[i], mx[i] + 1e-15);
  }
}

TEST(ReduceBench, LatencyGrowsWithProcessCount) {
  const auto machine = sim::make_daint();
  const auto p2 = reduce_bench(machine, 2, 60, 23).max_across_ranks();
  const auto p16 = reduce_bench(machine, 16, 60, 23).max_across_ranks();
  const auto p64 = reduce_bench(machine, 64, 60, 23).max_across_ranks();
  EXPECT_LT(stats::median(p2), stats::median(p16));
  EXPECT_LT(stats::median(p16), stats::median(p64));
}

TEST(ReduceBench, PowerOfTwoFasterThanNeighbors) {
  // The Figure 5 effect.
  const auto machine = sim::make_daint();
  const double t32 = stats::median(reduce_bench(machine, 32, 60, 24).max_across_ranks());
  const double t33 = stats::median(reduce_bench(machine, 33, 60, 24).max_across_ranks());
  const double t31 = stats::median(reduce_bench(machine, 31, 60, 24).max_across_ranks());
  EXPECT_LT(t32, t33);
  EXPECT_LT(t32, t31);
}

TEST(PiScaling, CompletionShrinksWithProcesses) {
  const auto machine = sim::make_daint();
  const auto t1 = pi_scaling_run(machine, 1, 20e-3, 0.01, 3, 31);
  const auto t8 = pi_scaling_run(machine, 8, 20e-3, 0.01, 3, 31);
  const auto t32 = pi_scaling_run(machine, 32, 20e-3, 0.01, 3, 31);
  EXPECT_GT(stats::median(t1), stats::median(t8));
  EXPECT_GT(stats::median(t8), stats::median(t32));
  // And respects the Amdahl floor: >= serial fraction.
  EXPECT_GT(stats::min_value(t32), 20e-3 * 0.01);
}

TEST(PiScaling, NearBaseAtOneProcess) {
  const auto t1 = pi_scaling_run(sim::make_noiseless(64), 1, 20e-3, 0.01, 1, 32);
  EXPECT_NEAR(t1[0], 20e-3, 1e-3);
}

TEST(WindowSyncSkew, SmallOnAllMachines) {
  for (const char* name : {"daint", "dora", "pilatus"}) {
    const auto skew = window_sync_skew(sim::make_machine(name), 8, 20, 33);
    EXPECT_EQ(skew.size(), 20u);
    EXPECT_LT(stats::median(skew), 5e-6) << name;
  }
}

}  // namespace
}  // namespace sci::simmpi
