#include <gtest/gtest.h>

#include <vector>

#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"
#include "stats/bootstrap.hpp"
#include "stats/confidence.hpp"
#include "stats/descriptive.hpp"

namespace sci::stats {
namespace {

std::vector<double> normal_sample(std::size_t n, std::uint64_t seed) {
  rng::Xoshiro256 gen(seed);
  std::vector<double> v;
  for (std::size_t i = 0; i < n; ++i) v.push_back(rng::normal(gen, 50.0, 5.0));
  return v;
}

TEST(Bootstrap, DeterministicForFixedSeed) {
  const auto v = normal_sample(40, 1);
  const auto mean_stat = [](std::span<const double> xs) { return arithmetic_mean(xs); };
  const auto d1 = bootstrap_distribution(v, mean_stat, 200, 7);
  const auto d2 = bootstrap_distribution(v, mean_stat, 200, 7);
  EXPECT_EQ(d1, d2);
  const auto d3 = bootstrap_distribution(v, mean_stat, 200, 8);
  EXPECT_NE(d1, d3);
}

TEST(Bootstrap, PercentileCiCloseToParametricOnNormalData) {
  const auto v = normal_sample(100, 2);
  const auto mean_stat = [](std::span<const double> xs) { return arithmetic_mean(xs); };
  const auto boot = bootstrap_percentile_ci(v, mean_stat, 2000, 0.95, 3);
  const auto param = mean_confidence_interval(v, 0.95);
  EXPECT_NEAR(boot.lower, param.lower, 0.35);
  EXPECT_NEAR(boot.upper, param.upper, 0.35);
}

TEST(Bootstrap, CiContainsPointEstimate) {
  const auto v = normal_sample(60, 4);
  const auto med = [](std::span<const double> xs) { return median(xs); };
  const auto ci = bootstrap_percentile_ci(v, med, 500, 0.95, 5);
  const double point = median(v);
  EXPECT_LE(ci.lower, point);
  EXPECT_GE(ci.upper, point);
}

TEST(Bootstrap, CoverageOfMeanCi) {
  // Percentile bootstrap 90% CIs should cover the true mean ~90%.
  int covered = 0;
  constexpr int kTrials = 200;
  const auto mean_stat = [](std::span<const double> xs) { return arithmetic_mean(xs); };
  for (int t = 0; t < kTrials; ++t) {
    const auto v = normal_sample(40, 1000 + t);
    covered += bootstrap_percentile_ci(v, mean_stat, 400, 0.90, t).contains(50.0);
  }
  const double rate = static_cast<double>(covered) / kTrials;
  EXPECT_GT(rate, 0.82);
  EXPECT_LT(rate, 0.97);
}

TEST(Bootstrap, BcaCorrectsSkew) {
  // On right-skewed data, BCa shifts the CI relative to the naive
  // percentile CI; both must stay valid brackets of the estimate region.
  rng::Xoshiro256 gen(6);
  std::vector<double> v;
  for (int i = 0; i < 50; ++i) v.push_back(rng::lognormal(gen, 0.0, 1.0));
  const auto mean_stat = [](std::span<const double> xs) { return arithmetic_mean(xs); };
  const auto naive = bootstrap_percentile_ci(v, mean_stat, 1000, 0.95, 9);
  const auto bca = bootstrap_bca_ci(v, mean_stat, 1000, 0.95, 9);
  EXPECT_GT(bca.upper, bca.lower);
  EXPECT_NE(bca.lower, naive.lower);  // correction does something
  EXPECT_TRUE(bca.contains(arithmetic_mean(v)));
}

TEST(Bootstrap, InputValidation) {
  const auto mean_stat = [](std::span<const double> xs) { return arithmetic_mean(xs); };
  EXPECT_THROW(bootstrap_distribution(std::vector<double>{1.0}, mean_stat, 10),
               std::invalid_argument);
  const std::vector<double> v = {1.0, 2.0, 3.0};
  EXPECT_THROW(bootstrap_distribution(v, mean_stat, 0), std::invalid_argument);
  EXPECT_THROW(bootstrap_distribution(std::vector<double>{1.0}, ResampleStat::mean(), 10),
               std::invalid_argument);
  EXPECT_THROW(bootstrap_distribution(v, ResampleStat::median(), 0), std::invalid_argument);
  EXPECT_THROW(ResampleStat::quantile(-0.1), std::domain_error);
  EXPECT_THROW(ResampleStat::quantile(1.5), std::domain_error);
}

// ---------------------------------------------------------------------------
// Selection fast path vs generic callback path: the contract is exact,
// seed-for-seed, bit-for-bit equality -- not statistical closeness.
// ---------------------------------------------------------------------------

/// (fast statistic, equivalent opaque callback) pairs under test.
struct StatPair {
  const char* name;
  ResampleStat fast;
  Statistic generic;
};

std::vector<StatPair> stat_pairs() {
  std::vector<StatPair> pairs;
  pairs.push_back({"mean", ResampleStat::mean(),
                   [](std::span<const double> xs) { return arithmetic_mean(xs); }});
  pairs.push_back({"median", ResampleStat::median(),
                   [](std::span<const double> xs) { return median(xs); }});
  pairs.push_back({"q1", ResampleStat::quantile(0.25),
                   [](std::span<const double> xs) { return quantile(xs, 0.25); }});
  pairs.push_back({"q3", ResampleStat::quantile(0.75),
                   [](std::span<const double> xs) { return quantile(xs, 0.75); }});
  pairs.push_back({"q1_r1", ResampleStat::quantile(0.25, QuantileMethod::kR1InverseEcdf),
                   [](std::span<const double> xs) {
                     return quantile(xs, 0.25, QuantileMethod::kR1InverseEcdf);
                   }});
  pairs.push_back({"q90_r6", ResampleStat::quantile(0.9, QuantileMethod::kR6Weibull),
                   [](std::span<const double> xs) {
                     return quantile(xs, 0.9, QuantileMethod::kR6Weibull);
                   }});
  return pairs;
}

std::vector<std::vector<double>> equality_fixtures() {
  std::vector<std::vector<double>> fixtures;
  fixtures.push_back(normal_sample(37, 11));  // odd n
  fixtures.push_back(normal_sample(64, 12));  // even n
  // Tie-heavy: quantized timer readings, the worst case for rank tricks.
  rng::Xoshiro256 gen(13);
  std::vector<double> ties;
  for (int i = 0; i < 48; ++i) {
    ties.push_back(1e-3 * static_cast<double>(rng::uniform_below(gen, 6)));
  }
  fixtures.push_back(std::move(ties));
  // Right-skewed, like real latency data.
  std::vector<double> skewed;
  for (int i = 0; i < 51; ++i) skewed.push_back(rng::lognormal(gen, 0.0, 1.0));
  fixtures.push_back(std::move(skewed));
  return fixtures;
}

TEST(BootstrapFastPath, DistributionBitIdenticalToGenericPath) {
  for (const auto& xs : equality_fixtures()) {
    for (const auto& pair : stat_pairs()) {
      for (std::uint64_t seed : {std::uint64_t{1}, std::uint64_t{0xb00f}}) {
        const auto fast = bootstrap_distribution(xs, pair.fast, 300, seed);
        const auto slow = bootstrap_distribution(xs, pair.generic, 300, seed);
        ASSERT_EQ(fast, slow) << pair.name << " seed " << seed << " n " << xs.size();
      }
    }
  }
}

TEST(BootstrapFastPath, PercentileCiBitIdenticalToGenericPath) {
  for (const auto& xs : equality_fixtures()) {
    for (const auto& pair : stat_pairs()) {
      const auto fast = bootstrap_percentile_ci(xs, pair.fast, 400, 0.95, 21);
      const auto slow = bootstrap_percentile_ci(xs, pair.generic, 400, 0.95, 21);
      EXPECT_EQ(fast.lower, slow.lower) << pair.name;
      EXPECT_EQ(fast.upper, slow.upper) << pair.name;
    }
  }
}

TEST(BootstrapFastPath, BcaCiBitIdenticalToGenericPath) {
  for (const auto& xs : equality_fixtures()) {
    for (const auto& pair : stat_pairs()) {
      const auto fast = bootstrap_bca_ci(xs, pair.fast, 400, 0.95, 31);
      const auto slow = bootstrap_bca_ci(xs, pair.generic, 400, 0.95, 31);
      EXPECT_EQ(fast.lower, slow.lower) << pair.name;
      EXPECT_EQ(fast.upper, slow.upper) << pair.name;
    }
  }
}

TEST(BootstrapFastPath, SmallSamplesAndOddReplicateCountsStayBitIdentical) {
  // Edge shapes for the engine the fast path now delegates to: n below
  // the 4-wide wave width, replicate counts that don't divide evenly,
  // and a single replicate.
  for (const std::size_t n : {2u, 3u, 5u}) {
    const auto xs = normal_sample(n, 70 + n);
    for (const auto& pair : stat_pairs()) {
      for (const std::size_t replicates : {1u, 7u, 33u}) {
        const auto fast = bootstrap_distribution(xs, pair.fast, replicates, 23);
        const auto slow = bootstrap_distribution(xs, pair.generic, replicates, 23);
        ASSERT_EQ(fast, slow) << pair.name << " n " << n << " R " << replicates;
      }
    }
  }
}

TEST(BootstrapFastPath, CustomKindMatchesStatisticOverloadExactly) {
  const auto v = normal_sample(40, 17);
  const Statistic cov = [](std::span<const double> xs) {
    return coefficient_of_variation(xs);
  };
  const auto via_custom = bootstrap_bca_ci(v, ResampleStat::custom(cov), 300, 0.95, 5);
  const auto via_statistic = bootstrap_bca_ci(v, cov, 300, 0.95, 5);
  EXPECT_EQ(via_custom.lower, via_statistic.lower);
  EXPECT_EQ(via_custom.upper, via_statistic.upper);
}

TEST(BootstrapFastPath, EvaluateMatchesDirectStatistics) {
  const auto v = normal_sample(25, 19);
  EXPECT_EQ(ResampleStat::mean().evaluate(v), arithmetic_mean(v));
  EXPECT_EQ(ResampleStat::median().evaluate(v), median(v));
  EXPECT_EQ(ResampleStat::quantile(0.25).evaluate(v), quantile(v, 0.25));
}

}  // namespace
}  // namespace sci::stats
