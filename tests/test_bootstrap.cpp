#include <gtest/gtest.h>

#include <vector>

#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"
#include "stats/bootstrap.hpp"
#include "stats/confidence.hpp"
#include "stats/descriptive.hpp"

namespace sci::stats {
namespace {

std::vector<double> normal_sample(std::size_t n, std::uint64_t seed) {
  rng::Xoshiro256 gen(seed);
  std::vector<double> v;
  for (std::size_t i = 0; i < n; ++i) v.push_back(rng::normal(gen, 50.0, 5.0));
  return v;
}

TEST(Bootstrap, DeterministicForFixedSeed) {
  const auto v = normal_sample(40, 1);
  const auto mean_stat = [](std::span<const double> xs) { return arithmetic_mean(xs); };
  const auto d1 = bootstrap_distribution(v, mean_stat, 200, 7);
  const auto d2 = bootstrap_distribution(v, mean_stat, 200, 7);
  EXPECT_EQ(d1, d2);
  const auto d3 = bootstrap_distribution(v, mean_stat, 200, 8);
  EXPECT_NE(d1, d3);
}

TEST(Bootstrap, PercentileCiCloseToParametricOnNormalData) {
  const auto v = normal_sample(100, 2);
  const auto mean_stat = [](std::span<const double> xs) { return arithmetic_mean(xs); };
  const auto boot = bootstrap_percentile_ci(v, mean_stat, 2000, 0.95, 3);
  const auto param = mean_confidence_interval(v, 0.95);
  EXPECT_NEAR(boot.lower, param.lower, 0.35);
  EXPECT_NEAR(boot.upper, param.upper, 0.35);
}

TEST(Bootstrap, CiContainsPointEstimate) {
  const auto v = normal_sample(60, 4);
  const auto med = [](std::span<const double> xs) { return median(xs); };
  const auto ci = bootstrap_percentile_ci(v, med, 500, 0.95, 5);
  const double point = median(v);
  EXPECT_LE(ci.lower, point);
  EXPECT_GE(ci.upper, point);
}

TEST(Bootstrap, CoverageOfMeanCi) {
  // Percentile bootstrap 90% CIs should cover the true mean ~90%.
  int covered = 0;
  constexpr int kTrials = 200;
  const auto mean_stat = [](std::span<const double> xs) { return arithmetic_mean(xs); };
  for (int t = 0; t < kTrials; ++t) {
    const auto v = normal_sample(40, 1000 + t);
    covered += bootstrap_percentile_ci(v, mean_stat, 400, 0.90, t).contains(50.0);
  }
  const double rate = static_cast<double>(covered) / kTrials;
  EXPECT_GT(rate, 0.82);
  EXPECT_LT(rate, 0.97);
}

TEST(Bootstrap, BcaCorrectsSkew) {
  // On right-skewed data, BCa shifts the CI relative to the naive
  // percentile CI; both must stay valid brackets of the estimate region.
  rng::Xoshiro256 gen(6);
  std::vector<double> v;
  for (int i = 0; i < 50; ++i) v.push_back(rng::lognormal(gen, 0.0, 1.0));
  const auto mean_stat = [](std::span<const double> xs) { return arithmetic_mean(xs); };
  const auto naive = bootstrap_percentile_ci(v, mean_stat, 1000, 0.95, 9);
  const auto bca = bootstrap_bca_ci(v, mean_stat, 1000, 0.95, 9);
  EXPECT_GT(bca.upper, bca.lower);
  EXPECT_NE(bca.lower, naive.lower);  // correction does something
  EXPECT_TRUE(bca.contains(arithmetic_mean(v)));
}

TEST(Bootstrap, InputValidation) {
  const auto mean_stat = [](std::span<const double> xs) { return arithmetic_mean(xs); };
  EXPECT_THROW(bootstrap_distribution(std::vector<double>{1.0}, mean_stat, 10),
               std::invalid_argument);
  const std::vector<double> v = {1.0, 2.0, 3.0};
  EXPECT_THROW(bootstrap_distribution(v, mean_stat, 0), std::invalid_argument);
}

}  // namespace
}  // namespace sci::stats
