// sci::ci -- performance history store, regression detection, and the
// BENCH json round trip the store depends on.
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ci/dashboard.hpp"
#include "ci/detect.hpp"
#include "ci/history.hpp"
#include "obs/bench_report.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"

namespace sci::ci {
namespace {

std::string temp_path(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

obs::BenchReport make_report(const std::string& sha, double median,
                             const std::string& bench = "demo",
                             obs::Improve improve = obs::Improve::kLower) {
  obs::BenchReport report;
  report.bench = bench;
  report.git_sha = sha;
  report.context["build_type"] = "release";
  obs::BenchMetric metric;
  metric.name = "lat";
  metric.unit = "us";
  metric.improve = improve;
  metric.n = 50;
  metric.median = median;
  metric.ci_lo = median * 0.99;
  metric.ci_hi = median * 1.01;
  report.metrics.push_back(metric);
  return report;
}

/// Ingests `medians` as one report per point (distinct shas).
HistoryStore store_with(const std::string& path, const std::vector<double>& medians,
                        obs::Improve improve = obs::Improve::kLower) {
  HistoryStore store(path);
  for (std::size_t i = 0; i < medians.size(); ++i) {
    store.ingest(make_report("sha" + std::to_string(i), medians[i], "demo", improve));
  }
  return store;
}

// ------------------------------------------------ BENCH json round trip

TEST(BenchJson, EmitParseReEmitIsByteIdentical) {
  obs::BenchReport report = make_report("abc123", 42.5);
  report.context["mode"] = "full";
  obs::BenchMetric rate;
  rate.name = "throughput";
  rate.unit = "rep/s";
  rate.improve = obs::Improve::kHigher;
  rate.n = 3;
  rate.median = 1234.5;
  rate.ci_lo = 1200.25;
  rate.ci_hi = 1300.75;
  report.metrics.push_back(rate);
  report.counters.emplace_back("allocs", 0);
  report.counters.emplace_back("spills", 17);

  const std::string first = obs::bench_report_json(report);
  const obs::BenchReport parsed = obs::parse_bench_report(first);
  const std::string second = obs::bench_report_json(parsed);
  EXPECT_EQ(first, second);

  EXPECT_EQ(parsed.bench, "demo");
  EXPECT_EQ(parsed.git_sha, "abc123");
  EXPECT_EQ(parsed.context.at("mode"), "full");
  ASSERT_EQ(parsed.metrics.size(), 2u);
  EXPECT_EQ(parsed.metrics[1].improve, obs::Improve::kHigher);
  EXPECT_EQ(parsed.metrics[1].median, 1234.5);
  ASSERT_EQ(parsed.counters.size(), 2u);
}

TEST(BenchJson, NonFiniteBoundsSurviveAsNaN) {
  obs::BenchReport report = make_report("abc", 1.0);
  report.metrics[0].ci_lo = std::numeric_limits<double>::quiet_NaN();
  report.metrics[0].ci_hi = std::numeric_limits<double>::infinity();

  const std::string first = obs::bench_report_json(report);
  EXPECT_NE(first.find("null"), std::string::npos);
  const obs::BenchReport parsed = obs::parse_bench_report(first);
  EXPECT_TRUE(std::isnan(parsed.metrics[0].ci_lo));
  EXPECT_TRUE(std::isnan(parsed.metrics[0].ci_hi));
  EXPECT_EQ(first, obs::bench_report_json(parsed));
}

TEST(BenchJson, ReporterSummarizesLikeTheBenchProse) {
  obs::BenchReporter reporter("summary");
  const std::vector<double> samples = {5.0, 1.0, 3.0, 2.0, 4.0, 6.0, 7.0};
  const obs::BenchMetric& m =
      reporter.add_metric("t", "s", samples, obs::Improve::kLower);
  EXPECT_EQ(m.n, samples.size());
  EXPECT_EQ(m.median, 4.0);
  EXPECT_LE(m.ci_lo, m.median);
  EXPECT_GE(m.ci_hi, m.median);
  // n <= 5 falls back to the observed range.
  const std::vector<double> tiny = {2.0, 1.0, 3.0};
  const obs::BenchMetric& t = reporter.add_metric("tiny", "s", tiny);
  EXPECT_EQ(t.ci_lo, 1.0);
  EXPECT_EQ(t.ci_hi, 3.0);
}

// ------------------------------------------------------- history store

TEST(History, LineRoundTrips) {
  HistoryPoint point;
  point.seq = 7;
  point.git_sha = "cafe";
  point.bench = "b with space";
  point.metric.name = "m\"quoted\"";
  point.metric.unit = "us";
  point.metric.improve = obs::Improve::kHigher;
  point.metric.n = 50;
  point.metric.median = 1.25;
  point.metric.ci_lo = 1.0;
  point.metric.ci_hi = 1.5;
  const HistoryPoint back = parse_history_line(history_line(point));
  EXPECT_EQ(back.git_sha, "cafe");
  EXPECT_EQ(back.bench, "b with space");
  EXPECT_EQ(back.metric.name, "m\"quoted\"");
  EXPECT_EQ(back.metric.improve, obs::Improve::kHigher);
  EXPECT_EQ(history_line(point), history_line(back));
}

TEST(History, IngestAppendsAndReloadsIdentically) {
  const std::string path = temp_path("hist_basic.jsonl");
  {
    HistoryStore store(path);
    EXPECT_EQ(store.ingest(make_report("s1", 1.0)), 1u);
    EXPECT_EQ(store.ingest(make_report("s2", 1.1)), 1u);
    EXPECT_EQ(store.points().size(), 2u);
  }
  HistoryStore reloaded(path);
  ASSERT_EQ(reloaded.points().size(), 2u);
  EXPECT_EQ(reloaded.points()[0].git_sha, "s1");
  EXPECT_EQ(reloaded.points()[1].git_sha, "s2");
  EXPECT_EQ(reloaded.points()[1].seq, 1u);
  EXPECT_EQ(reloaded.skipped_lines(), 0u);
}

TEST(History, ReingestingSameShaIsIdempotent) {
  const std::string path = temp_path("hist_idem.jsonl");
  HistoryStore store(path);
  EXPECT_EQ(store.ingest(make_report("s1", 1.0)), 1u);
  // A retried CI job ingests the identical report again: no-op.
  EXPECT_EQ(store.ingest(make_report("s1", 1.0)), 0u);
  EXPECT_EQ(store.points().size(), 1u);
  HistoryStore reloaded(path);
  EXPECT_EQ(reloaded.points().size(), 1u);
}

TEST(History, TornTailIsSkippedAndHealed) {
  const std::string path = temp_path("hist_torn.jsonl");
  {
    HistoryStore store(path);
    store.ingest(make_report("s1", 1.0));
    store.ingest(make_report("s2", 1.1));
  }
  // Crash mid-append: the file ends with half a record, no newline.
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << "{\"seq\": 2, \"sha\": \"s3\", \"ben";
  }
  HistoryStore store(path);
  EXPECT_EQ(store.points().size(), 2u);
  EXPECT_EQ(store.skipped_lines(), 1u);
  // The next append heals the missing newline; the new record must not
  // glue onto the scar.
  store.ingest(make_report("s4", 1.2));
  HistoryStore reloaded(path);
  ASSERT_EQ(reloaded.points().size(), 3u);
  EXPECT_EQ(reloaded.points()[2].git_sha, "s4");
  EXPECT_EQ(reloaded.skipped_lines(), 1u);
}

TEST(History, SeriesGroupsByBenchAndMetricInFirstAppearanceOrder) {
  const std::string path = temp_path("hist_series.jsonl");
  HistoryStore store(path);
  store.ingest(make_report("s1", 1.0, "alpha"));
  store.ingest(make_report("s1", 2.0, "beta"));
  store.ingest(make_report("s2", 1.1, "alpha"));
  const auto series = store.series();
  ASSERT_EQ(series.size(), 2u);
  EXPECT_EQ(series[0].bench, "alpha");
  EXPECT_EQ(series[0].points.size(), 2u);
  EXPECT_EQ(series[1].bench, "beta");
  const auto medians = series[0].medians();
  ASSERT_EQ(medians.size(), 2u);
  EXPECT_EQ(medians[1], 1.1);
}

// --------------------------------------------------------- detection

TEST(Detect, InjectedStepChangeIsFlagged) {
  const std::string path = temp_path("hist_step.jsonl");
  std::vector<double> medians;
  for (int i = 0; i < 30; ++i) {
    medians.push_back((i < 15 ? 1.0 : 1.5) + 0.002 * (i % 3));
  }
  const HistoryStore store = store_with(path, medians);
  const auto findings = analyze_all(store.series());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].verdict, Verdict::kRegression);
  EXPECT_TRUE(findings[0].changepoint);
  EXPECT_EQ(findings[0].changepoint_index, 15u);
  EXPECT_GT(findings[0].changepoint_shift, 0.4);
  EXPECT_LT(findings[0].changepoint_p, 0.05);
  EXPECT_TRUE(any_regression(findings));
}

TEST(Detect, FreshRegressionCaughtByCiOverlapGate) {
  const std::string path = temp_path("hist_gate.jsonl");
  std::vector<double> medians;
  for (int i = 0; i < 10; ++i) medians.push_back(1.0 + 0.001 * (i % 3));
  medians.push_back(1.5);  // the PR under test
  const HistoryStore store = store_with(path, medians);
  const auto findings = analyze_all(store.series());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].verdict, Verdict::kRegression);
  EXPECT_TRUE(findings[0].ci_disjoint);
  EXPECT_GT(findings[0].change_fraction, 0.4);
}

TEST(Detect, ImproveDirectionFlipsTheVerdict) {
  // Throughput metric (higher is better): a drop is the regression, a
  // rise is the improvement.
  const std::string drop_path = temp_path("hist_drop.jsonl");
  std::vector<double> drop;
  for (int i = 0; i < 10; ++i) drop.push_back(1000.0 + (i % 3));
  drop.push_back(600.0);
  const auto drop_findings =
      analyze_all(store_with(drop_path, drop, obs::Improve::kHigher).series());
  EXPECT_EQ(drop_findings[0].verdict, Verdict::kRegression);

  const std::string rise_path = temp_path("hist_rise.jsonl");
  std::vector<double> rise;
  for (int i = 0; i < 10; ++i) rise.push_back(1000.0 + (i % 3));
  rise.push_back(1600.0);
  const auto rise_findings =
      analyze_all(store_with(rise_path, rise, obs::Improve::kHigher).series());
  EXPECT_EQ(rise_findings[0].verdict, Verdict::kImprovement);
  EXPECT_FALSE(any_regression(rise_findings));
}

TEST(Detect, FlatNoisyHistoryStaysQuiet) {
  // The false-positive rate the bench-regression-gate lives on: 20
  // deterministic noisy-but-flat histories, zero regressions allowed.
  rng::Xoshiro256 gen(0xfacade);
  int regressions = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const std::string path = temp_path("hist_flat_" + std::to_string(trial) + ".jsonl");
    std::vector<double> medians;
    for (int i = 0; i < 25; ++i) {
      medians.push_back(1.0 + 0.01 * rng::normal(gen, 0.0, 1.0));
    }
    const HistoryStore store = store_with(path, medians);
    const auto findings = analyze_all(store.series());
    if (any_regression(findings)) ++regressions;
  }
  EXPECT_EQ(regressions, 0);
}

TEST(Detect, ShortHistoryIsInsufficientNotStable) {
  const std::string path = temp_path("hist_short.jsonl");
  const HistoryStore store = store_with(path, {1.0, 1.1});
  const auto findings = analyze_all(store.series());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].verdict, Verdict::kInsufficientHistory);
  EXPECT_FALSE(any_regression(findings));
}

TEST(Detect, SmallChangesBelowMinEffectStayStable) {
  const std::string path = temp_path("hist_smalleffect.jsonl");
  std::vector<double> medians;
  for (int i = 0; i < 10; ++i) medians.push_back(1.0);
  medians.push_back(1.02);  // 2% < default min_effect 5%
  const HistoryStore store = store_with(path, medians);
  const auto findings = analyze_all(store.series());
  EXPECT_EQ(findings[0].verdict, Verdict::kStable);
}

TEST(Detect, DegenerateBaselineCiIsFlaggedAsBlindSpot) {
  // Default 8-point window: the median rank CI over 8 points always
  // clamps to ranks [1, 8] -- the observed range -- so the overlap gate
  // has almost no power there. The finding must say so.
  const std::string path = temp_path("hist_degenerate.jsonl");
  std::vector<double> medians;
  for (int i = 0; i < 10; ++i) medians.push_back(1.0 + 0.001 * (i % 3));
  const auto findings = analyze_all(store_with(path, medians).series());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_TRUE(findings[0].baseline_ci_degenerate);
  EXPECT_NE(findings[0].note.find("degenerate"), std::string::npos) << findings[0].note;
  const std::string markdown =
      render_markdown_dashboard(findings, store_with(path, medians).series());
  EXPECT_NE(markdown.find("degenerate-baseline-ci"), std::string::npos);

  // A constant window is a zero-width interval, not a wide one.
  const std::string flat = temp_path("hist_degenerate_flat.jsonl");
  const auto flat_findings =
      analyze_all(store_with(flat, std::vector<double>(10, 1.0)).series());
  ASSERT_EQ(flat_findings.size(), 1u);
  EXPECT_FALSE(flat_findings[0].baseline_ci_degenerate);
}

TEST(Detect, StepInLastTwoPointsIsCaughtByTailTest) {
  // ROADMAP item 5 blind spot, pinned: a step at n-2 of a batch-ingested
  // history. The KW scan's 2-point suffix cannot survive Bonferroni, and
  // the 8-point baseline window already contains the stepped point (its
  // degenerate [min, max] CI overlaps the latest CI). Only the exact
  // tail rank-separation test fires: p = 2 / C(10, 2) ~ 0.044 < 0.05.
  const std::string path = temp_path("hist_tail_step.jsonl");
  std::vector<double> medians;
  for (int i = 0; i < 10; ++i) medians.push_back(1.0 + 0.001 * (i % 3));
  medians.push_back(1.5);  // the step lands at n-2...
  medians.push_back(1.5);  // ...and the latest point confirms the regime
  const HistoryStore store = store_with(path, medians);
  const auto findings = analyze_all(store.series());
  ASSERT_EQ(findings.size(), 1u);
  // The two legacy gating detectors are blind here -- the reason this
  // test exists. If either starts firing, the scenario no longer pins
  // the tail test and needs rebuilding.
  EXPECT_FALSE(findings[0].ci_disjoint);
  EXPECT_FALSE(findings[0].changepoint);
  EXPECT_TRUE(findings[0].tail_step);
  EXPECT_EQ(findings[0].tail_k, 2u);
  EXPECT_LT(findings[0].tail_p, 0.05);
  EXPECT_GT(findings[0].tail_shift, 0.4);
  EXPECT_EQ(findings[0].verdict, Verdict::kRegression);
  EXPECT_TRUE(any_regression(findings));
  EXPECT_NE(findings[0].note.find("step in last 2"), std::string::npos)
      << findings[0].note;
  const std::string markdown = render_markdown_dashboard(findings, store.series());
  EXPECT_NE(markdown.find("tail-step"), std::string::npos);
}

TEST(Detect, StepInLastThreePointsIsCaughtByTailTest) {
  const std::string path = temp_path("hist_tail3.jsonl");
  std::vector<double> medians;
  for (int i = 0; i < 10; ++i) medians.push_back(1.0 + 0.001 * (i % 3));
  for (int i = 0; i < 3; ++i) medians.push_back(1.4 + 0.001 * i);
  const auto findings = analyze_all(store_with(path, medians).series());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_TRUE(findings[0].tail_step);
  EXPECT_EQ(findings[0].tail_k, 3u);  // k=3 gives the smaller exact p
  EXPECT_EQ(findings[0].verdict, Verdict::kRegression);
}

TEST(Detect, TailTestIsOneSidedAndRespectsImproveDirection) {
  // A tail step in the BETTER direction never fires (one-sided by
  // construction)...
  const std::string better = temp_path("hist_tail_better.jsonl");
  std::vector<double> faster;
  for (int i = 0; i < 10; ++i) faster.push_back(1.0 + 0.001 * (i % 3));
  faster.push_back(0.5);
  faster.push_back(0.5);
  const auto better_findings = analyze_all(store_with(better, faster).series());
  EXPECT_FALSE(better_findings[0].tail_step);
  EXPECT_FALSE(any_regression(better_findings));

  // ...and for a higher-is-better metric "worse" means a drop.
  const std::string drop = temp_path("hist_tail_drop.jsonl");
  std::vector<double> throughput;
  for (int i = 0; i < 10; ++i) throughput.push_back(1000.0 + (i % 3));
  throughput.push_back(600.0);
  throughput.push_back(600.0);
  const auto drop_findings =
      analyze_all(store_with(drop, throughput, obs::Improve::kHigher).series());
  EXPECT_TRUE(drop_findings[0].tail_step);
  EXPECT_EQ(drop_findings[0].verdict, Verdict::kRegression);
}

TEST(Detect, TailTestStaysQuietBelowMinEffectAndOnTies) {
  // Full separation but a 2% shift: below min_effect, stays stable.
  const std::string small = temp_path("hist_tail_small.jsonl");
  std::vector<double> medians;
  for (int i = 0; i < 10; ++i) medians.push_back(1.0 + 0.0001 * (i % 3));
  medians.push_back(1.02);
  medians.push_back(1.02);
  const auto findings = analyze_all(store_with(small, medians).series());
  EXPECT_FALSE(findings[0].tail_step);
  EXPECT_EQ(findings[0].verdict, Verdict::kStable);

  // A tie between tail and baseline max breaks strict separation: the
  // exact p is only valid under full separation, so no flag.
  const std::string tied = temp_path("hist_tail_tied.jsonl");
  std::vector<double> tie;
  for (int i = 0; i < 9; ++i) tie.push_back(1.0);
  tie.push_back(1.5);  // baseline already contains the level
  tie.push_back(1.5);
  tie.push_back(1.5);
  // tail k=2 = {1.5, 1.5} vs baseline containing 1.5: not separated;
  // k=3 = last three 1.5s vs all-1.0 baseline IS separated -- the step
  // at n-3 is caught by k=3 exactly as designed.
  const auto tie_findings = analyze_all(store_with(tied, tie).series());
  EXPECT_TRUE(tie_findings[0].tail_step);
  EXPECT_EQ(tie_findings[0].tail_k, 3u);
}

TEST(Detect, WideBaselineWindowEscapesDegeneracy) {
  // With 20 baseline points the rank CI's clamped indices pull inside
  // the observed range and the flag clears.
  const std::string path = temp_path("hist_wide_window.jsonl");
  rng::Xoshiro256 gen(0xbead);
  std::vector<double> medians;
  for (int i = 0; i < 25; ++i) {
    medians.push_back(1.0 + 0.01 * rng::normal(gen, 0.0, 1.0));
  }
  DetectionOptions options;
  options.baseline_window = 20;
  const auto findings = analyze_all(store_with(path, medians).series(), options);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_FALSE(findings[0].baseline_ci_degenerate);
  EXPECT_EQ(findings[0].note.find("degenerate"), std::string::npos);
}

// --------------------------------------------------------- dashboard

TEST(Dashboard, MarkdownAndHtmlRenderFindings) {
  const std::string path = temp_path("hist_dash.jsonl");
  std::vector<double> medians;
  for (int i = 0; i < 10; ++i) medians.push_back(1.0 + 0.001 * (i % 3));
  medians.push_back(1.5);
  const HistoryStore store = store_with(path, medians);
  const auto series = store.series();
  const auto findings = analyze_all(series);

  const std::string md = render_markdown_dashboard(findings, series);
  EXPECT_NE(md.find("| bench |"), std::string::npos);
  EXPECT_NE(md.find("REGRESSION"), std::string::npos);
  EXPECT_NE(md.find("demo"), std::string::npos);

  const std::string html = render_html_dashboard(findings, series);
  EXPECT_NE(html.find("<svg"), std::string::npos);
  EXPECT_NE(html.find("class=\"regression\""), std::string::npos);
  EXPECT_NE(html.find("</html>"), std::string::npos);
}

}  // namespace
}  // namespace sci::ci
