// Algebraic identities between collectives: different algorithms must
// agree on the values they compute, whatever the simulated timing does.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "sim/machine.hpp"
#include "simmpi/collectives.hpp"
#include "simmpi/comm.hpp"

namespace sci::simmpi {
namespace {

class CollectiveAlgebra : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveAlgebra, ScatterInvertsGather) {
  const int p = GetParam();
  World world(sim::make_daint(), p, 2000 + p);
  std::vector<double> round_tripped(p, -1.0);
  world.launch([&](Comm& c) -> sim::Task<void> {
    const double mine = 3.0 * c.rank() + 1.0;
    auto collected = co_await gather(c, mine, 0);
    // Root redistributes exactly what it gathered.
    round_tripped[c.rank()] = co_await scatter(c, std::move(collected), 0);
  });
  world.run();
  for (int r = 0; r < p; ++r) EXPECT_EQ(round_tripped[r], 3.0 * r + 1.0);
}

TEST_P(CollectiveAlgebra, AllreduceEqualsReduceThenBcast) {
  const int p = GetParam();
  World world(sim::make_daint(), p, 2100 + p);
  std::vector<double> via_allreduce(p), via_reduce_bcast(p);
  world.launch([&](Comm& c) -> sim::Task<void> {
    const double mine = static_cast<double>((c.rank() + 3) * (c.rank() + 3));
    via_allreduce[c.rank()] = co_await allreduce(c, mine);
    const double reduced = co_await reduce(c, mine, 0);
    via_reduce_bcast[c.rank()] = co_await bcast(c, reduced, 0);
  });
  world.run();
  for (int r = 0; r < p; ++r) EXPECT_EQ(via_allreduce[r], via_reduce_bcast[r]);
}

TEST_P(CollectiveAlgebra, ScanLastRankEqualsFullSum) {
  const int p = GetParam();
  World world(sim::make_daint(), p, 2200 + p);
  std::vector<double> prefix(p), total(p);
  world.launch([&](Comm& c) -> sim::Task<void> {
    const double mine = 1.5 * c.rank() + 0.25;
    prefix[c.rank()] = co_await scan(c, mine);
    total[c.rank()] = co_await allreduce(c, mine);
  });
  world.run();
  EXPECT_NEAR(prefix[p - 1], total[0], 1e-12);
  // And the scan is monotone for positive inputs.
  for (int r = 1; r < p; ++r) EXPECT_GT(prefix[r], prefix[r - 1]);
}

TEST_P(CollectiveAlgebra, AllgatherMatchesGatherAtEveryRoot) {
  const int p = GetParam();
  if (p > 16) GTEST_SKIP() << "p roots x gather is quadratic; capped";
  World world(sim::make_daint(), p, 2300 + p);
  std::vector<std::vector<double>> ag(p);
  std::vector<std::vector<double>> g_at_root(p);
  world.launch([&](Comm& c) -> sim::Task<void> {
    const double mine = 7.0 - c.rank();
    ag[c.rank()] = co_await allgather(c, mine);
    for (int root = 0; root < c.size(); ++root) {
      auto got = co_await gather(c, mine, root);
      if (c.rank() == root) g_at_root[root] = std::move(got);
    }
  });
  world.run();
  for (int root = 0; root < p; ++root) {
    EXPECT_EQ(ag[0], g_at_root[root]) << "root " << root;
  }
}

TEST_P(CollectiveAlgebra, AlltoallIsATranspose) {
  const int p = GetParam();
  World world(sim::make_daint(), p, 2400 + p);
  std::vector<std::vector<double>> received(p);
  world.launch([&](Comm& c) -> sim::Task<void> {
    std::vector<double> row;
    for (int dst = 0; dst < c.size(); ++dst) {
      row.push_back(c.rank() * 1000.0 + dst);  // M[src][dst]
    }
    received[c.rank()] = co_await alltoall(c, std::move(row));
  });
  world.run();
  // received[r][s] must equal M[s][r]: the transpose.
  for (int r = 0; r < p; ++r) {
    for (int s = 0; s < p; ++s) {
      EXPECT_EQ(received[r][s], s * 1000.0 + r);
    }
  }
}

TEST_P(CollectiveAlgebra, ReduceMatchesSerialFold) {
  const int p = GetParam();
  World world(sim::make_daint(), p, 2500 + p);
  std::vector<double> values;
  for (int r = 0; r < p; ++r) values.push_back(0.1 * r * r - 3.0);
  std::vector<double> at_root(p, 0.0);
  world.launch([&](Comm& c) -> sim::Task<void> {
    at_root[c.rank()] = co_await reduce(c, values[c.rank()], 0);
  });
  world.run();
  const double expected = std::accumulate(values.begin(), values.end(), 0.0);
  EXPECT_NEAR(at_root[0], expected, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(ProcessCounts, CollectiveAlgebra,
                         ::testing::Values(2, 3, 5, 8, 13, 16, 32),
                         [](const auto& tpi) {
                           return "p" + std::to_string(tpi.param);
                         });

}  // namespace
}  // namespace sci::simmpi
