#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/machine.hpp"
#include "simmpi/collectives.hpp"
#include "simmpi/comm.hpp"

namespace sci::simmpi {
namespace {

class CollectiveRanks : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveRanks, ReduceSumsToRoot) {
  const int p = GetParam();
  World world(sim::make_noiseless(64), p, 100 + p);
  std::vector<double> results(p, -1.0);
  world.launch([&](Comm& c) -> sim::Task<void> {
    results[c.rank()] =
        co_await reduce(c, static_cast<double>(c.rank() + 1), /*root=*/0);
  });
  world.run();
  EXPECT_EQ(results[0], p * (p + 1) / 2.0);
}

TEST_P(CollectiveRanks, ReduceToNonZeroRoot) {
  const int p = GetParam();
  if (p < 2) GTEST_SKIP();
  const int root = p - 1;
  World world(sim::make_noiseless(64), p, 200 + p);
  std::vector<double> results(p, -1.0);
  world.launch([&](Comm& c) -> sim::Task<void> {
    results[c.rank()] = co_await reduce(c, 2.0, root);
  });
  world.run();
  EXPECT_EQ(results[root], 2.0 * p);
}

TEST_P(CollectiveRanks, ReduceMinMaxOps) {
  const int p = GetParam();
  World world(sim::make_noiseless(64), p, 300 + p);
  std::vector<double> mins(p), maxs(p);
  world.launch([&](Comm& c) -> sim::Task<void> {
    mins[c.rank()] =
        co_await reduce(c, static_cast<double>(c.rank()), 0, ReduceOp::kMin);
    maxs[c.rank()] =
        co_await reduce(c, static_cast<double>(c.rank()), 0, ReduceOp::kMax);
  });
  world.run();
  EXPECT_EQ(mins[0], 0.0);
  EXPECT_EQ(maxs[0], static_cast<double>(p - 1));
}

TEST_P(CollectiveRanks, BcastReachesEveryRank) {
  const int p = GetParam();
  World world(sim::make_noiseless(64), p, 400 + p);
  std::vector<double> results(p, -1.0);
  world.launch([&](Comm& c) -> sim::Task<void> {
    const double mine = (c.rank() == 0) ? 123.0 : -7.0;
    results[c.rank()] = co_await bcast(c, mine, 0);
  });
  world.run();
  for (double v : results) EXPECT_EQ(v, 123.0);
}

TEST_P(CollectiveRanks, BcastFromNonZeroRoot) {
  const int p = GetParam();
  if (p < 2) GTEST_SKIP();
  const int root = p / 2;
  World world(sim::make_noiseless(64), p, 500 + p);
  std::vector<double> results(p, -1.0);
  world.launch([&](Comm& c) -> sim::Task<void> {
    const double mine = (c.rank() == root) ? 77.0 : 0.0;
    results[c.rank()] = co_await bcast(c, mine, root);
  });
  world.run();
  for (double v : results) EXPECT_EQ(v, 77.0);
}

TEST_P(CollectiveRanks, AllreduceGivesSumEverywhere) {
  const int p = GetParam();
  World world(sim::make_noiseless(64), p, 600 + p);
  std::vector<double> results(p, -1.0);
  world.launch([&](Comm& c) -> sim::Task<void> {
    results[c.rank()] = co_await allreduce(c, static_cast<double>(c.rank() + 1));
  });
  world.run();
  for (double v : results) EXPECT_EQ(v, p * (p + 1) / 2.0);
}

TEST_P(CollectiveRanks, CollectivesCorrectUnderNoise) {
  // Noise reorders event timing but must never corrupt values.
  const int p = GetParam();
  World world(sim::make_pilatus(), p, 700 + p);
  std::vector<double> results(p, -1.0);
  world.launch([&](Comm& c) -> sim::Task<void> {
    results[c.rank()] = co_await allreduce(c, static_cast<double>(c.rank() + 1));
  });
  world.run();
  for (double v : results) EXPECT_EQ(v, p * (p + 1) / 2.0);
}

TEST_P(CollectiveRanks, BarrierSeparatesPhases) {
  // No rank may leave the barrier before every rank entered it.
  const int p = GetParam();
  if (p < 2) GTEST_SKIP();
  World world(sim::make_noiseless(64), p, 800 + p);
  std::vector<double> enter(p, 0.0), leave(p, 0.0);
  world.launch([&](Comm& c) -> sim::Task<void> {
    // Stagger entries: rank r computes r * 1 ms first.
    co_await c.compute(1e-3 * (c.rank() + 1));
    enter[c.rank()] = c.world().engine().now();
    co_await barrier(c);
    leave[c.rank()] = c.world().engine().now();
  });
  world.run();
  const double last_enter = *std::max_element(enter.begin(), enter.end());
  for (int r = 0; r < p; ++r) EXPECT_GE(leave[r], last_enter);
}

INSTANTIATE_TEST_SUITE_P(ProcessCounts, CollectiveRanks,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 12, 16, 27, 32, 33, 64),
                         [](const auto& tpi) {
                           return "p" + std::to_string(tpi.param);
                         });

TEST(WindowSync, RanksLeaveNearlySimultaneously) {
  // The sync should compress the (up to ~100 us) clock offsets down to
  // the offset-estimation error, which is bounded by RTT variation.
  World world(sim::make_dora(), 8, 1);
  std::vector<double> leave(8, 0.0);
  world.launch([&](Comm& c) -> sim::Task<void> {
    co_await window_sync(c, /*window_s=*/500e-6);
    leave[c.rank()] = c.world().engine().now();
  });
  world.run();
  const auto [lo, hi] = std::minmax_element(leave.begin(), leave.end());
  EXPECT_LT(*hi - *lo, 5e-6);  // few-microsecond skew, not ~100 us offsets
}

TEST(WindowSync, SingleRankIsNoop) {
  World world(sim::make_noiseless(4), 1, 2);
  world.launch([](Comm& c) -> sim::Task<void> { co_await window_sync(c, 1e-4); });
  EXPECT_NO_THROW(world.run());
}

TEST(WindowSync, RepeatedSyncsStaySynchronized) {
  World world(sim::make_dora(), 4, 3);
  std::vector<std::vector<double>> leave(5, std::vector<double>(4, 0.0));
  world.launch([&](Comm& c) -> sim::Task<void> {
    for (int iter = 0; iter < 5; ++iter) {
      co_await window_sync(c, 300e-6);
      leave[iter][c.rank()] = c.world().engine().now();
    }
  });
  world.run();
  for (const auto& row : leave) {
    const auto [lo, hi] = std::minmax_element(row.begin(), row.end());
    EXPECT_LT(*hi - *lo, 5e-6);
  }
}

TEST(ReduceOpApply, Semantics) {
  EXPECT_EQ(apply(ReduceOp::kSum, 2.0, 3.0), 5.0);
  EXPECT_EQ(apply(ReduceOp::kMin, 2.0, 3.0), 2.0);
  EXPECT_EQ(apply(ReduceOp::kMax, 2.0, 3.0), 3.0);
}

}  // namespace
}  // namespace sci::simmpi
