#include <gtest/gtest.h>

#include <vector>

#include "sim/machine.hpp"
#include "simmpi/collectives.hpp"
#include "simmpi/comm.hpp"

namespace sci::simmpi {
namespace {

class ExtCollectives : public ::testing::TestWithParam<int> {};

TEST_P(ExtCollectives, GatherCollectsInRankOrder) {
  const int p = GetParam();
  World world(sim::make_noiseless(64), p, 1000 + p);
  std::vector<double> at_root;
  world.launch([&](Comm& c) -> sim::Task<void> {
    auto got = co_await gather(c, 100.0 + c.rank(), /*root=*/0);
    if (c.rank() == 0) at_root = std::move(got);
  });
  world.run();
  ASSERT_EQ(at_root.size(), static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) EXPECT_EQ(at_root[r], 100.0 + r);
}

TEST_P(ExtCollectives, GatherToNonZeroRoot) {
  const int p = GetParam();
  if (p < 2) GTEST_SKIP();
  const int root = p - 1;
  World world(sim::make_noiseless(64), p, 1100 + p);
  std::vector<double> at_root;
  world.launch([&](Comm& c) -> sim::Task<void> {
    auto got = co_await gather(c, static_cast<double>(c.rank() * c.rank()), root);
    if (c.rank() == root) at_root = std::move(got);
  });
  world.run();
  ASSERT_EQ(at_root.size(), static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) EXPECT_EQ(at_root[r], r * r);
}

TEST_P(ExtCollectives, ScatterDistributesByRank) {
  const int p = GetParam();
  World world(sim::make_noiseless(64), p, 1200 + p);
  std::vector<double> received(p, -1.0);
  world.launch([&](Comm& c) -> sim::Task<void> {
    std::vector<double> values;
    if (c.rank() == 0) {
      for (int r = 0; r < c.size(); ++r) values.push_back(7.0 * r);
    }
    received[c.rank()] = co_await scatter(c, std::move(values), 0);
  });
  world.run();
  for (int r = 0; r < p; ++r) EXPECT_EQ(received[r], 7.0 * r);
}

TEST_P(ExtCollectives, ScatterFromNonZeroRoot) {
  const int p = GetParam();
  if (p < 3) GTEST_SKIP();
  const int root = p / 2;
  World world(sim::make_noiseless(64), p, 1300 + p);
  std::vector<double> received(p, -1.0);
  world.launch([&](Comm& c) -> sim::Task<void> {
    std::vector<double> values;
    if (c.rank() == root) {
      for (int r = 0; r < c.size(); ++r) values.push_back(r + 0.5);
    }
    received[c.rank()] = co_await scatter(c, std::move(values), root);
  });
  world.run();
  for (int r = 0; r < p; ++r) EXPECT_EQ(received[r], r + 0.5);
}

TEST_P(ExtCollectives, AllgatherEveryoneSeesEverything) {
  const int p = GetParam();
  World world(sim::make_noiseless(64), p, 1400 + p);
  std::vector<std::vector<double>> results(p);
  world.launch([&](Comm& c) -> sim::Task<void> {
    results[c.rank()] = co_await allgather(c, 3.0 * c.rank() + 1.0);
  });
  world.run();
  for (int r = 0; r < p; ++r) {
    ASSERT_EQ(results[r].size(), static_cast<std::size_t>(p));
    for (int s = 0; s < p; ++s) EXPECT_EQ(results[r][s], 3.0 * s + 1.0) << r;
  }
}

TEST_P(ExtCollectives, AlltoallPersonalizedExchange) {
  const int p = GetParam();
  World world(sim::make_noiseless(64), p, 1500 + p);
  std::vector<std::vector<double>> results(p);
  world.launch([&](Comm& c) -> sim::Task<void> {
    // Rank r sends r*100 + dst to each destination.
    std::vector<double> to_each;
    for (int dst = 0; dst < c.size(); ++dst) {
      to_each.push_back(c.rank() * 100.0 + dst);
    }
    results[c.rank()] = co_await alltoall(c, std::move(to_each));
  });
  world.run();
  for (int r = 0; r < p; ++r) {
    for (int s = 0; s < p; ++s) {
      EXPECT_EQ(results[r][s], s * 100.0 + r);  // what s sent to r
    }
  }
}

TEST_P(ExtCollectives, ScanComputesPrefixSums) {
  const int p = GetParam();
  World world(sim::make_noiseless(64), p, 1600 + p);
  std::vector<double> results(p, -1.0);
  world.launch([&](Comm& c) -> sim::Task<void> {
    results[c.rank()] = co_await scan(c, static_cast<double>(c.rank() + 1));
  });
  world.run();
  for (int r = 0; r < p; ++r) {
    EXPECT_EQ(results[r], (r + 1) * (r + 2) / 2.0);  // 1+2+...+(r+1)
  }
}

TEST_P(ExtCollectives, ScanMaxOp) {
  const int p = GetParam();
  World world(sim::make_noiseless(64), p, 1700 + p);
  std::vector<double> results(p, -1.0);
  world.launch([&](Comm& c) -> sim::Task<void> {
    // Values alternate; prefix max is max over [0, r].
    const double v = (c.rank() % 2 == 0) ? c.rank() : -c.rank();
    results[c.rank()] = co_await scan(c, v, ReduceOp::kMax);
  });
  world.run();
  double expected = 0.0;
  for (int r = 0; r < p; ++r) {
    const double v = (r % 2 == 0) ? r : -r;
    expected = std::max(expected, v);
    EXPECT_EQ(results[r], expected);
  }
}

TEST_P(ExtCollectives, CorrectUnderNoise) {
  const int p = GetParam();
  World world(sim::make_daint(), p, 1800 + p);
  std::vector<std::vector<double>> ag(p);
  std::vector<double> sc(p, -1.0);
  world.launch([&](Comm& c) -> sim::Task<void> {
    ag[c.rank()] = co_await allgather(c, static_cast<double>(c.rank()));
    sc[c.rank()] = co_await scan(c, 1.0);
  });
  world.run();
  for (int r = 0; r < p; ++r) {
    for (int s = 0; s < p; ++s) EXPECT_EQ(ag[r][s], s);
    EXPECT_EQ(sc[r], r + 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(ProcessCounts, ExtCollectives,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 13, 16, 31, 32),
                         [](const auto& tpi) {
                           return "p" + std::to_string(tpi.param);
                         });

TEST(ExtCollectives, ScatterValidation) {
  World world(sim::make_noiseless(8), 4, 1);
  world.launch([&](Comm& c) -> sim::Task<void> {
    if (c.rank() == 0) {
      // Wrong size on root must throw inside the coroutine; World::run
      // surfaces it via std::terminate avoidance -- here we just verify
      // non-root path works with empty vectors.
    }
    std::vector<double> values;
    if (c.rank() == 0) values = {1.0, 2.0, 3.0, 4.0};
    (void)co_await scatter(c, std::move(values), 0);
  });
  EXPECT_NO_THROW(world.run());
}

}  // namespace
}  // namespace sci::simmpi
