#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/machine.hpp"
#include "simmpi/comm.hpp"

namespace sci::simmpi {
namespace {

TEST(Comm, SendRecvDeliversPayload) {
  World world(sim::make_noiseless(4), 2, 1);
  std::vector<double> received;
  world.launch_on(0, [](Comm& c) -> sim::Task<void> {
    std::vector<double> payload(2);
    payload[0] = 3.5;
    payload[1] = 4.5;
    co_await c.send(1, 7, 16, std::move(payload));
  });
  world.launch_on(1, [&](Comm& c) -> sim::Task<void> {
    Message m = co_await c.recv(0, 7);
    received = m.payload;
    EXPECT_EQ(m.src, 0);
    EXPECT_EQ(m.tag, 7);
    EXPECT_EQ(m.bytes, 16u);
  });
  world.run();
  EXPECT_EQ(received, (std::vector<double>{3.5, 4.5}));
  EXPECT_EQ(world.messages_delivered(), 1u);
}

TEST(Comm, RecvBeforeSendAlsoWorks) {
  // Posted-receive path: receiver parks first.
  World world(sim::make_noiseless(4), 2, 2);
  bool got = false;
  world.launch_on(1, [&](Comm& c) -> sim::Task<void> {
    (void)co_await c.recv(0, 1);
    got = true;
  });
  world.launch_on(0, [](Comm& c) -> sim::Task<void> {
    co_await c.compute(1e-3);  // delay the send well past the recv post
    co_await c.send(1, 1, 8);
  });
  world.run();
  EXPECT_TRUE(got);
}

TEST(Comm, TagMatchingIsSelective) {
  World world(sim::make_noiseless(4), 2, 3);
  std::vector<int> order;
  world.launch_on(0, [](Comm& c) -> sim::Task<void> {
    co_await c.send(1, /*tag=*/10, 8, std::vector<double>(1, 10.0));
    co_await c.send(1, /*tag=*/20, 8, std::vector<double>(1, 20.0));
  });
  world.launch_on(1, [&](Comm& c) -> sim::Task<void> {
    // Receive out of order by tag: tag 20 first.
    Message m20 = co_await c.recv(0, 20);
    Message m10 = co_await c.recv(0, 10);
    order.push_back(static_cast<int>(m20.payload.at(0)));
    order.push_back(static_cast<int>(m10.payload.at(0)));
  });
  world.run();
  EXPECT_EQ(order, (std::vector<int>{20, 10}));
}

TEST(Comm, WildcardsMatchAnything) {
  World world(sim::make_noiseless(4), 3, 4);
  int from = -1;
  world.launch_on(2, [](Comm& c) -> sim::Task<void> {
    co_await c.send(0, 99, 8);
  });
  world.launch_on(0, [&](Comm& c) -> sim::Task<void> {
    Message m = co_await c.recv(kAnySource, kAnyTag);
    from = m.src;
  });
  world.launch_on(1, [](Comm&) -> sim::Task<void> { co_return; });
  world.run();
  EXPECT_EQ(from, 2);
}

TEST(Comm, FifoPerChannel) {
  // Same (src, dst, tag): arrival order must match send order even with
  // noisy per-message transfer times.
  World world(sim::make_pilatus(), 2, 5);
  std::vector<double> seq;
  constexpr int kN = 200;
  world.launch_on(0, [](Comm& c) -> sim::Task<void> {
    for (int i = 0; i < kN; ++i) {
      co_await c.send(1, 0, 8, std::vector<double>(1, static_cast<double>(i)));
    }
  });
  world.launch_on(1, [&](Comm& c) -> sim::Task<void> {
    for (int i = 0; i < kN; ++i) {
      Message m = co_await c.recv(0, 0);
      seq.push_back(m.payload.at(0));
    }
  });
  world.run();
  ASSERT_EQ(seq.size(), static_cast<std::size_t>(kN));
  for (int i = 0; i < kN; ++i) EXPECT_EQ(seq[i], i);
}

TEST(Comm, DeadlockDetected) {
  World world(sim::make_noiseless(4), 2, 6);
  world.launch([](Comm& c) -> sim::Task<void> {
    // Both ranks receive first: classic deadlock.
    (void)co_await c.recv(1 - c.rank(), 0);
    co_await c.send(1 - c.rank(), 0, 8);
  });
  EXPECT_THROW(world.run(), std::runtime_error);
}

TEST(Comm, ComputeAdvancesLocalTime) {
  World world(sim::make_noiseless(4), 1, 7);
  double before = 0.0, after = 0.0;
  world.launch_on(0, [&](Comm& c) -> sim::Task<void> {
    before = c.wtime();
    co_await c.compute(0.5);
    after = c.wtime();
  });
  world.run();
  EXPECT_NEAR(after - before, 0.5, 1e-9);
}

TEST(Comm, ClockSkewVisibleOnNoisyMachine) {
  World world(sim::make_dora(), 8, 8);
  bool any_offset = false;
  for (int r = 0; r < 8; ++r) {
    if (std::fabs(world.comm(r).clock().offset()) > 1e-9) any_offset = true;
  }
  EXPECT_TRUE(any_offset);
}

TEST(Comm, WaitUntilLocalHonorsSkewedClock) {
  World world(sim::make_dora(), 2, 9);
  double woke_local = 0.0, target = 0.0;
  world.launch_on(0, [&](Comm& c) -> sim::Task<void> {
    target = c.wtime() + 1e-3;
    co_await c.wait_until_local(target);
    woke_local = c.wtime();
  });
  world.launch_on(1, [](Comm&) -> sim::Task<void> { co_return; });
  world.run();
  EXPECT_NEAR(woke_local, target, 1e-9);
}

TEST(Comm, DeterministicAcrossRuns) {
  auto run_once = [] {
    World world(sim::make_daint(), 4, 42);
    std::vector<double> finish(4);
    world.launch([&](Comm& c) -> sim::Task<void> {
      for (int i = 0; i < 10; ++i) {
        const int peer = c.rank() ^ 1;
        if (c.rank() < peer) {
          co_await c.send(peer, 0, 64);
          (void)co_await c.recv(peer, 1);
        } else {
          (void)co_await c.recv(peer, 0);
          co_await c.send(peer, 1, 64);
        }
      }
      finish[c.rank()] = c.world().engine().now();
    });
    world.run();
    return finish;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Comm, InvalidRanksThrow) {
  World world(sim::make_noiseless(4), 2, 10);
  EXPECT_THROW((void)world.comm(0).send(5, 0, 8), std::out_of_range);
  EXPECT_THROW((void)world.comm(0).recv(-2, 0), std::out_of_range);
  EXPECT_THROW((void)world.comm(0).compute(-1.0), std::domain_error);
}

TEST(Comm, RendezvousStepAboveEagerThreshold) {
  // A message just above the eager limit pays the handshake round trip:
  // the latency jump is far larger than the payload-size difference
  // alone explains.
  const auto machine = sim::make_noiseless(4);
  const std::size_t limit = machine.loggp.eager_threshold_bytes;
  auto one_way = [&](std::size_t bytes) {
    World world(machine, 2, 50);
    double t = 0.0;
    world.launch_on(0, [&](Comm& c) -> sim::Task<void> {
      co_await c.send(1, 0, bytes);
    });
    world.launch_on(1, [&](Comm& c) -> sim::Task<void> {
      (void)co_await c.recv(0, 0);
      t = c.world().engine().now();
    });
    world.run();
    return t;
  };
  const double below = one_way(limit);
  const double above = one_way(limit + 1);
  const double per_byte = machine.loggp.gap_per_byte_s;
  EXPECT_GT(above - below, 100.0 * per_byte);  // step, not slope
  // The step equals one small-message round trip: 2 (o + wire_small).
  const auto net = machine.make_network();
  const double expected =
      2.0 * (machine.loggp.overhead_s + net.ideal_transfer_time(0, 1, 8));
  EXPECT_NEAR(above - below, expected + per_byte, 1e-9);
}

TEST(World, RoundRobinWhenRanksExceedNodes) {
  World world(sim::make_noiseless(4), 10, 11);
  EXPECT_EQ(world.size(), 10);
  // Ranks 0..3 on distinct nodes, then wrap.
  EXPECT_EQ(world.comm(0).node(), world.comm(4).node());
}

}  // namespace
}  // namespace sci::simmpi
