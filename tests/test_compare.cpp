#include <gtest/gtest.h>

#include <vector>

#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"
#include "stats/compare.hpp"

namespace sci::stats {
namespace {

std::vector<double> sample(double mean, double sd, std::size_t n, std::uint64_t seed) {
  rng::Xoshiro256 gen(seed);
  std::vector<double> v;
  for (std::size_t i = 0; i < n; ++i) v.push_back(rng::normal(gen, mean, sd));
  return v;
}

TEST(TTest, DetectsClearDifference) {
  const auto a = sample(10.0, 1.0, 50, 1);
  const auto b = sample(12.0, 1.0, 50, 2);
  EXPECT_LT(t_test(a, b).p_value, 1e-6);
  EXPECT_LT(t_test(a, b, /*pooled=*/true).p_value, 1e-6);
}

TEST(TTest, AcceptsEqualMeans) {
  int rejections = 0;
  for (std::uint64_t s = 0; s < 40; ++s) {
    const auto a = sample(5.0, 1.0, 30, 100 + s);
    const auto b = sample(5.0, 1.0, 30, 200 + s);
    rejections += (t_test(a, b).p_value < 0.05);
  }
  EXPECT_LE(rejections, 6);  // ~5% type-I errors
}

TEST(TTest, WelchHandlesUnequalVariances) {
  const auto a = sample(10.0, 0.5, 20, 3);
  const auto b = sample(10.0, 5.0, 20, 4);
  const auto r = t_test(a, b, /*pooled=*/false);
  EXPECT_GT(r.p_value, 0.01);  // no real difference
}

TEST(TTest, SignOfStatistic) {
  const auto a = sample(3.0, 1.0, 40, 5);
  const auto b = sample(8.0, 1.0, 40, 6);
  EXPECT_LT(t_test(a, b).statistic, 0.0);
  EXPECT_GT(t_test(b, a).statistic, 0.0);
}

TEST(Anova, MatchesHandComputedF) {
  // Three groups of three, easy numbers.
  const std::vector<std::vector<double>> groups = {
      {1.0, 2.0, 3.0}, {2.0, 3.0, 4.0}, {6.0, 7.0, 8.0}};
  const auto r = one_way_anova(groups);
  // Grand mean 4; SSB = 3*(2-4)^2 + 3*(3-4)^2 + 3*(7-4)^2 = 42; MSB = 21.
  // SSW = 2+2+2 = 6; MSW = 1. F = 21.
  EXPECT_NEAR(r.inter_group_variability, 21.0, 1e-9);
  EXPECT_NEAR(r.intra_group_variability, 1.0, 1e-9);
  EXPECT_NEAR(r.f_statistic, 21.0, 1e-9);
  EXPECT_LT(r.p_value, 0.01);
  EXPECT_TRUE(r.reject());
}

TEST(Anova, EqualGroupsNotRejected) {
  std::vector<std::vector<double>> groups;
  for (std::uint64_t g = 0; g < 4; ++g) groups.push_back(sample(7.0, 2.0, 25, 300 + g));
  EXPECT_GT(one_way_anova(groups).p_value, 0.01);
}

TEST(Anova, ConstantGroupsEdgeCases) {
  const std::vector<std::vector<double>> same = {{2.0, 2.0}, {2.0, 2.0}};
  EXPECT_EQ(one_way_anova(same).p_value, 1.0);
  const std::vector<std::vector<double>> diff = {{2.0, 2.0}, {3.0, 3.0}};
  EXPECT_EQ(one_way_anova(diff).p_value, 0.0);
}

TEST(Anova, UnequalGroupSizes) {
  const std::vector<std::vector<double>> groups = {
      sample(5.0, 1.0, 10, 11), sample(5.0, 1.0, 40, 12), sample(9.0, 1.0, 25, 13)};
  EXPECT_TRUE(one_way_anova(groups).reject());
}

TEST(KruskalWallis, DetectsMedianShift) {
  rng::Xoshiro256 gen(20);
  std::vector<double> a, b;
  for (int i = 0; i < 60; ++i) {
    a.push_back(rng::lognormal(gen, 0.0, 0.5));
    b.push_back(rng::lognormal(gen, 0.5, 0.5));
  }
  const std::vector<std::vector<double>> groups = {a, b};
  EXPECT_LT(kruskal_wallis(groups).p_value, 0.001);
}

TEST(KruskalWallis, AcceptsSameDistribution) {
  int rejections = 0;
  for (std::uint64_t s = 0; s < 30; ++s) {
    rng::Xoshiro256 gen(500 + s);
    std::vector<double> a, b, c;
    for (int i = 0; i < 30; ++i) {
      a.push_back(rng::lognormal(gen, 1.0, 1.0));
      b.push_back(rng::lognormal(gen, 1.0, 1.0));
      c.push_back(rng::lognormal(gen, 1.0, 1.0));
    }
    const std::vector<std::vector<double>> groups = {a, b, c};
    rejections += kruskal_wallis(groups).reject(0.05);
  }
  EXPECT_LE(rejections, 5);
}

TEST(KruskalWallis, HandlesTies) {
  const std::vector<std::vector<double>> groups = {{1.0, 2.0, 2.0, 3.0},
                                                   {2.0, 3.0, 3.0, 4.0}};
  const auto r = kruskal_wallis(groups);
  EXPECT_GE(r.p_value, 0.0);
  EXPECT_LE(r.p_value, 1.0);
  EXPECT_GT(r.statistic, 0.0);
}

TEST(KruskalWallis, KnownSmallExample) {
  // Hand-checkable: disjoint groups {1,2,3} vs {4,5,6}; ranks 1-3 vs 4-6.
  // H = 12/(6*7) * (6^2/3 + 15^2/3) - 3*7 = 2/7 * 87 - 21 = 3.857...
  const std::vector<std::vector<double>> groups = {{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  EXPECT_NEAR(kruskal_wallis(groups).statistic, 27.0 / 7.0, 1e-9);
}

TEST(EffectSize, KnownValue) {
  // Means differ by 2, pooled sd = 1 -> d = 2.
  const std::vector<double> a = {9.0, 10.0, 11.0};
  const std::vector<double> b = {7.0, 8.0, 9.0};
  EXPECT_NEAR(effect_size_cohens_d(a, b), 2.0, 1e-9);
}

TEST(EffectSize, Classification) {
  EXPECT_EQ(classify_effect(0.1), EffectMagnitude::kNegligible);
  EXPECT_EQ(classify_effect(-0.3), EffectMagnitude::kSmall);
  EXPECT_EQ(classify_effect(0.6), EffectMagnitude::kMedium);
  EXPECT_EQ(classify_effect(-1.5), EffectMagnitude::kLarge);
  EXPECT_STREQ(to_string(EffectMagnitude::kLarge), "large");
}

TEST(EffectSize, SmallEffectBetterMetricThanPValue) {
  // The paper's point: with huge n, tiny differences become "significant"
  // while the effect size stays negligible.
  const auto a = sample(10.00, 1.0, 20000, 31);
  const auto b = sample(10.03, 1.0, 20000, 32);
  EXPECT_LT(t_test(a, b).p_value, 0.05);                      // "significant"
  EXPECT_EQ(classify_effect(effect_size_cohens_d(a, b)),
            EffectMagnitude::kNegligible);                    // but meaningless
}

}  // namespace
}  // namespace sci::stats
