#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"
#include "stats/confidence.hpp"
#include "stats/descriptive.hpp"
#include "stats/distributions.hpp"

namespace sci::stats {
namespace {

TEST(MeanCI, MatchesHandComputation) {
  const std::vector<double> v = {10.0, 12.0, 11.0, 13.0, 9.0};
  // mean 11, s = sqrt(2.5), t(4, .025) = 2.776.
  const auto ci = mean_confidence_interval(v, 0.95);
  const double half = 2.776 * std::sqrt(2.5) / std::sqrt(5.0);
  EXPECT_NEAR(ci.lower, 11.0 - half, 0.01);
  EXPECT_NEAR(ci.upper, 11.0 + half, 0.01);
  EXPECT_TRUE(ci.contains(11.0));
}

TEST(MeanCI, NarrowsWithMoreSamples) {
  rng::Xoshiro256 gen(1);
  std::vector<double> v;
  for (int i = 0; i < 20; ++i) v.push_back(rng::normal(gen, 5.0, 1.0));
  const double w20 = mean_confidence_interval(v).width();
  for (int i = 0; i < 480; ++i) v.push_back(rng::normal(gen, 5.0, 1.0));
  const double w500 = mean_confidence_interval(v).width();
  EXPECT_LT(w500, w20 / 3.0);  // ~ sqrt(25) = 5x narrower in expectation
}

TEST(MeanCI, CoverageProperty) {
  // 95% CIs should contain the true mean ~95% of the time (frequentist
  // interpretation spelled out in Section 3.1.2).
  rng::Xoshiro256 gen(2);
  int covered = 0;
  constexpr int kTrials = 2000;
  for (int t = 0; t < kTrials; ++t) {
    std::vector<double> v;
    for (int i = 0; i < 30; ++i) v.push_back(rng::normal(gen, 10.0, 2.0));
    covered += mean_confidence_interval(v, 0.95).contains(10.0);
  }
  const double rate = static_cast<double>(covered) / kTrials;
  EXPECT_GT(rate, 0.93);
  EXPECT_LT(rate, 0.97);
}

TEST(MedianCI, CoveragePropertyOnSkewedData) {
  // The rank-based CI is distribution-free: check on lognormal data.
  rng::Xoshiro256 gen(3);
  const double true_median = std::exp(1.0);  // lognormal(1, 0.75)
  int covered = 0;
  constexpr int kTrials = 1500;
  for (int t = 0; t < kTrials; ++t) {
    std::vector<double> v;
    for (int i = 0; i < 50; ++i) v.push_back(rng::lognormal(gen, 1.0, 0.75));
    covered += median_confidence_interval(v, 0.95).contains(true_median);
  }
  const double rate = static_cast<double>(covered) / kTrials;
  EXPECT_GT(rate, 0.92);  // rank CIs are conservative: >= nominal
}

TEST(MedianCI, BoundsAreObservedValues) {
  const std::vector<double> v = {5.0, 3.0, 8.0, 1.0, 9.0, 2.0, 7.0, 4.0, 6.0, 10.0};
  const auto ci = median_confidence_interval(v, 0.95);
  auto is_observed = [&](double x) {
    for (double w : v) {
      if (w == x) return true;
    }
    return false;
  };
  EXPECT_TRUE(is_observed(ci.lower));
  EXPECT_TRUE(is_observed(ci.upper));
  EXPECT_LE(ci.lower, median(v));
  EXPECT_GE(ci.upper, median(v));
}

TEST(QuantileCI, RequiresEnoughSamples) {
  const std::vector<double> v = {1, 2, 3, 4, 5};
  EXPECT_THROW((void)quantile_confidence_interval(v, 0.5), std::invalid_argument);
}

TEST(QuantileCI, TailQuantileAsymmetric) {
  rng::Xoshiro256 gen(4);
  std::vector<double> v;
  for (int i = 0; i < 500; ++i) v.push_back(rng::exponential(gen, 1.0));
  const auto ci = quantile_confidence_interval(v, 0.9, 0.95);
  const double q90 = quantile(v, 0.9);
  EXPECT_LE(ci.lower, q90);
  EXPECT_GE(ci.upper, q90);
}

TEST(Interval, OverlapLogic) {
  const Interval a{1.0, 2.0, 0.95};
  const Interval b{1.5, 3.0, 0.95};
  const Interval c{2.5, 3.0, 0.95};
  EXPECT_TRUE(a.overlaps(b));
  EXPECT_TRUE(b.overlaps(a));
  EXPECT_FALSE(a.overlaps(c));
  EXPECT_TRUE(b.overlaps(c));
}

TEST(RequiredSamples, MatchesFormula) {
  const std::vector<double> pilot = {10.0, 12.0, 11.0, 13.0, 9.0, 10.5, 11.5, 12.5};
  const double mean = arithmetic_mean(pilot);
  const double s = sample_stddev(pilot);
  const double t = StudentT{7.0}.critical_two_sided(0.05);
  const auto n = required_samples_mean(pilot, 0.02, 0.95);
  const double expect = std::pow(s * t / (0.02 * mean), 2.0);
  EXPECT_EQ(n, static_cast<std::size_t>(std::ceil(expect)));
}

TEST(RequiredSamples, TighterErrorNeedsMore) {
  rng::Xoshiro256 gen(5);
  std::vector<double> pilot;
  for (int i = 0; i < 30; ++i) pilot.push_back(rng::normal(gen, 100.0, 15.0));
  EXPECT_GT(required_samples_mean(pilot, 0.01), required_samples_mean(pilot, 0.05));
}

TEST(QuantileConverged, DetectsConvergence) {
  // Very tight data converges immediately; wild data does not.
  std::vector<double> tight;
  rng::Xoshiro256 gen(6);
  for (int i = 0; i < 100; ++i) tight.push_back(rng::normal(gen, 100.0, 0.1));
  EXPECT_TRUE(quantile_ci_converged(tight, 0.5, 0.05));

  std::vector<double> wild;
  for (int i = 0; i < 10; ++i) wild.push_back(rng::pareto(gen, 1.0, 1.1));
  EXPECT_FALSE(quantile_ci_converged(wild, 0.5, 0.0001));
}

}  // namespace
}  // namespace sci::stats
