#include <gtest/gtest.h>

#include "core/adaptive.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"

namespace sci::core {
namespace {

TEST(Adaptive, ConvergesQuicklyOnTightData) {
  rng::Xoshiro256 gen(1);
  const auto r = measure_adaptive([&] { return rng::normal(gen, 100.0, 0.5); });
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.stop_reason, "converged");
  EXPECT_LT(r.samples.size(), 200u);
  EXPECT_GE(r.samples.size(), 10u);  // min_samples respected
}

TEST(Adaptive, HitsBudgetOnWildData) {
  rng::Xoshiro256 gen(2);
  AdaptiveOptions opts;
  opts.relative_error = 1e-6;  // unreachable for heavy-tailed data
  opts.max_samples = 100;
  const auto r = measure_adaptive([&] { return rng::pareto(gen, 1.0, 1.2); }, opts);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.stop_reason, "max_samples");
  EXPECT_EQ(r.samples.size(), 100u);
}

TEST(Adaptive, WarmupDiscarded) {
  int calls = 0;
  AdaptiveOptions opts;
  opts.warmup = 5;
  opts.min_samples = 10;
  opts.max_samples = 20;
  const auto r = measure_adaptive(
      [&] {
        ++calls;
        // First calls return an absurd warm-up transient.
        return calls <= 5 ? 1e9 : 10.0;
      },
      opts);
  EXPECT_EQ(r.warmup_discarded, 5u);
  for (double v : r.samples) EXPECT_EQ(v, 10.0);  // transient never recorded
  EXPECT_TRUE(r.converged);
}

TEST(Adaptive, MeanModeConverges) {
  rng::Xoshiro256 gen(3);
  AdaptiveOptions opts;
  opts.use_mean = true;
  opts.relative_error = 0.02;
  const auto r = measure_adaptive([&] { return rng::normal(gen, 42.0, 1.0); }, opts);
  EXPECT_TRUE(r.converged);
}

TEST(Adaptive, TailQuantileMode) {
  rng::Xoshiro256 gen(4);
  AdaptiveOptions opts;
  opts.quantile = 0.9;
  opts.relative_error = 0.1;
  opts.max_samples = 5000;
  const auto r = measure_adaptive([&] { return rng::exponential(gen, 1.0); }, opts);
  EXPECT_TRUE(r.converged);
  EXPECT_GT(r.samples.size(), 50u);  // tails need more data than the median
}

TEST(Adaptive, TighterErrorNeedsMoreSamples) {
  AdaptiveOptions loose, tight;
  loose.relative_error = 0.10;
  tight.relative_error = 0.02;
  tight.max_samples = loose.max_samples = 100000;
  rng::Xoshiro256 g1(5), g2(5);
  const auto rl = measure_adaptive([&] { return rng::lognormal(g1, 0.0, 0.6); }, loose);
  const auto rt = measure_adaptive([&] { return rng::lognormal(g2, 0.0, 0.6); }, tight);
  ASSERT_TRUE(rl.converged);
  ASSERT_TRUE(rt.converged);
  EXPECT_GT(rt.samples.size(), rl.samples.size());
}

TEST(Adaptive, Validation) {
  const auto f = [] { return 1.0; };
  AdaptiveOptions opts;
  opts.relative_error = 0.0;
  EXPECT_THROW(measure_adaptive(f, opts), std::domain_error);
  opts.relative_error = 0.1;
  opts.max_samples = 5;
  opts.min_samples = 10;
  EXPECT_THROW(measure_adaptive(f, opts), std::invalid_argument);
  EXPECT_THROW(measure_adaptive(nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace sci::core
