#include <gtest/gtest.h>

#include <cmath>

#include "core/bounds.hpp"

namespace sci::core {
namespace {

TEST(ScalingBounds, IdealIsLinear) {
  const ScalingBounds b(10.0, 0.0);
  EXPECT_EQ(b.time_ideal(1), 10.0);
  EXPECT_EQ(b.time_ideal(10), 1.0);
  EXPECT_EQ(b.speedup_ideal(8), 8.0);
}

TEST(ScalingBounds, AmdahlSaturates) {
  const ScalingBounds b(1.0, 0.1);
  // Amdahl limit: 1/b = 10.
  EXPECT_NEAR(b.speedup_amdahl(1), 1.0, 1e-12);
  EXPECT_LT(b.speedup_amdahl(1000), 10.0);
  EXPECT_GT(b.speedup_amdahl(1000), 9.0);
  EXPECT_NEAR(b.time_amdahl(10), 1.0 * (0.1 + 0.9 / 10.0), 1e-12);
}

class BoundsOrdering : public ::testing::TestWithParam<int> {};

TEST_P(BoundsOrdering, TighterModelsBoundBelow) {
  // ideal <= amdahl <= with_overheads for time; reverse for speedup.
  const int p = GetParam();
  const ScalingBounds b(20e-3, 0.01, daint_reduction_overhead);
  EXPECT_LE(b.time_ideal(p), b.time_amdahl(p) + 1e-15);
  EXPECT_LE(b.time_amdahl(p), b.time_with_overheads(p) + 1e-15);
  EXPECT_GE(b.speedup_ideal(p), b.speedup_amdahl(p) - 1e-12);
  EXPECT_GE(b.speedup_amdahl(p), b.speedup_with_overheads(p) - 1e-12);
}

INSTANTIATE_TEST_SUITE_P(ProcessCounts, BoundsOrdering,
                         ::testing::Values(1, 2, 4, 8, 9, 16, 17, 32));

TEST(ScalingBounds, PaperFigure7Model) {
  // Base 20 ms, b = 0.01, piecewise reduction model: the overheads line
  // must stay below ideal and above zero for all plotted p.
  const ScalingBounds b(20e-3, 0.01, daint_reduction_overhead);
  // At p = 32 the overhead is 0.17 ms * 5 = 0.85 ms.
  EXPECT_NEAR(daint_reduction_overhead(32), 0.17e-3 * 5.0, 1e-12);
  EXPECT_NEAR(daint_reduction_overhead(4), 10e-9, 1e-15);
  EXPECT_NEAR(daint_reduction_overhead(16), 0.1e-3 * 4.0, 1e-12);
  const double t32 = b.time_with_overheads(32);
  EXPECT_NEAR(t32, 20e-3 * (0.01 + 0.99 / 32.0) + 0.85e-3, 1e-9);
}

TEST(ScalingBounds, Validation) {
  EXPECT_THROW(ScalingBounds(0.0, 0.1), std::domain_error);
  EXPECT_THROW(ScalingBounds(1.0, -0.1), std::domain_error);
  EXPECT_THROW(ScalingBounds(1.0, 1.1), std::domain_error);
  const ScalingBounds b(1.0, 0.1);
  EXPECT_THROW((void)b.time_ideal(0), std::domain_error);
  EXPECT_THROW((void)daint_reduction_overhead(0), std::domain_error);
}

TEST(MachineModel, FractionAndBottleneck) {
  const MachineModel model({{"flops", 100.0}, {"membw", 50.0}});
  const auto frac = model.fraction_of_peak({50.0, 45.0});
  EXPECT_NEAR(frac[0], 0.5, 1e-12);
  EXPECT_NEAR(frac[1], 0.9, 1e-12);
  EXPECT_EQ(model.bottleneck({50.0, 45.0}), 1u);  // membw limits
  EXPECT_TRUE(model.near_peak({50.0, 45.0}, 0.1));
  EXPECT_FALSE(model.near_peak({50.0, 30.0}, 0.1));
}

TEST(MachineModel, Validation) {
  EXPECT_THROW(MachineModel({}), std::invalid_argument);
  EXPECT_THROW(MachineModel({{"flops", 0.0}}), std::domain_error);
  const MachineModel model({{"flops", 1.0}});
  EXPECT_THROW(model.fraction_of_peak({1.0, 2.0}), std::invalid_argument);
}

TEST(Roofline, RidgePointBehavior) {
  const double peak = 100.0, bw = 10.0;
  // Below the ridge (intensity < 10): bandwidth-bound.
  EXPECT_EQ(roofline_attainable(peak, bw, 2.0), 20.0);
  // Above the ridge: compute-bound.
  EXPECT_EQ(roofline_attainable(peak, bw, 50.0), 100.0);
  EXPECT_EQ(roofline_attainable(peak, bw, 10.0), 100.0);
  EXPECT_THROW((void)roofline_attainable(0.0, bw, 1.0), std::domain_error);
}

TEST(SpeedupReport, Rule1Rendering) {
  SpeedupReport r;
  r.base_case = BaseCase::kBestSerial;
  r.base_absolute = 12.5;
  r.base_unit = "s";
  r.processes = {2, 4};
  r.speedups = {1.9, 3.7};
  const auto text = r.to_string();
  EXPECT_NE(text.find("best serial implementation"), std::string::npos);
  EXPECT_NE(text.find("12.5 s"), std::string::npos);
  EXPECT_NE(text.find("p=4"), std::string::npos);
  EXPECT_STREQ(to_string(BaseCase::kSingleParallelProcess),
               "parallel code on one process");
}

}  // namespace
}  // namespace sci::core
