#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "core/dataset.hpp"

namespace sci::core {
namespace {

Experiment make_experiment() {
  Experiment e;
  e.name = "latency_sweep";
  e.set("machine", "dora-sim");
  e.add_factor("bytes", {"64", "4096"});
  return e;
}

TEST(Dataset, StoresRowsAndColumns) {
  Dataset ds(make_experiment(), {"bytes", "latency_us"});
  ds.add_row({64.0, 1.7});
  ds.add_row({4096.0, 2.4});
  EXPECT_EQ(ds.rows(), 2u);
  EXPECT_EQ(ds.column("latency_us"), (std::vector<double>{1.7, 2.4}));
  EXPECT_EQ(ds.row(1)[0], 4096.0);
}

TEST(Dataset, ArityAndColumnErrors) {
  Dataset ds(make_experiment(), {"a", "b"});
  EXPECT_THROW(ds.add_row({1.0}), std::invalid_argument);
  EXPECT_THROW(ds.column("missing"), std::out_of_range);
  EXPECT_THROW(Dataset(make_experiment(), {}), std::invalid_argument);
}

TEST(Dataset, CsvHeaderEmbedsExperiment) {
  Dataset ds(make_experiment(), {"x"});
  ds.add_row({1.0});
  std::ostringstream os;
  ds.write_csv(os);
  const auto text = os.str();
  EXPECT_NE(text.find("# experiment: latency_sweep"), std::string::npos);
  EXPECT_NE(text.find("# env.machine: dora-sim"), std::string::npos);
  EXPECT_NE(text.find("# factor.bytes: 64 4096"), std::string::npos);
  EXPECT_NE(text.find("x\n"), std::string::npos);
}

TEST(Dataset, RoundTripThroughFile) {
  const std::string path = ::testing::TempDir() + "/scibench_roundtrip.csv";
  {
    Dataset ds(make_experiment(), {"bytes", "latency_us"});
    ds.add_row({64.0, 1.6625});
    ds.add_row({128.0, 1.75});
    ds.add_row({4096.0, 2.875});
    ds.save_csv(path);
  }
  const auto loaded = Dataset::load_csv(path);
  EXPECT_EQ(loaded.rows(), 3u);
  EXPECT_EQ(loaded.columns(), (std::vector<std::string>{"bytes", "latency_us"}));
  EXPECT_DOUBLE_EQ(loaded.column("latency_us")[2], 2.875);
  // Provenance preserved in description.
  EXPECT_NE(loaded.experiment().description.find("latency_sweep"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Dataset, FullPrecisionRoundTrip) {
  const std::string path = ::testing::TempDir() + "/scibench_precision.csv";
  const double value = 1.0 / 3.0;
  {
    Dataset ds(make_experiment(), {"v"});
    ds.add_row({value});
    ds.save_csv(path);
  }
  const auto loaded = Dataset::load_csv(path);
  EXPECT_EQ(loaded.column("v")[0], value);  // bit-exact via %.17g
  std::remove(path.c_str());
}

TEST(Dataset, LoadMissingFileThrows) {
  EXPECT_THROW(Dataset::load_csv("/nonexistent/nope.csv"), std::runtime_error);
}

}  // namespace
}  // namespace sci::core
