#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/dataset.hpp"

namespace sci::core {
namespace {

Experiment make_experiment() {
  Experiment e;
  e.name = "latency_sweep";
  e.set("machine", "dora-sim");
  e.add_factor("bytes", {"64", "4096"});
  return e;
}

TEST(Dataset, StoresRowsAndColumns) {
  Dataset ds(make_experiment(), {"bytes", "latency_us"});
  ds.add_row({64.0, 1.7});
  ds.add_row({4096.0, 2.4});
  EXPECT_EQ(ds.rows(), 2u);
  EXPECT_EQ(ds.column("latency_us"), (std::vector<double>{1.7, 2.4}));
  EXPECT_EQ(ds.row(1)[0], 4096.0);
}

TEST(Dataset, ArityAndColumnErrors) {
  Dataset ds(make_experiment(), {"a", "b"});
  EXPECT_THROW(ds.add_row({1.0}), std::invalid_argument);
  EXPECT_THROW(ds.column("missing"), std::out_of_range);
  EXPECT_THROW(Dataset(make_experiment(), {}), std::invalid_argument);
}

TEST(Dataset, CsvHeaderEmbedsExperiment) {
  Dataset ds(make_experiment(), {"x"});
  ds.add_row({1.0});
  std::ostringstream os;
  ds.write_csv(os);
  const auto text = os.str();
  EXPECT_NE(text.find("# experiment: latency_sweep"), std::string::npos);
  EXPECT_NE(text.find("# env.machine: dora-sim"), std::string::npos);
  EXPECT_NE(text.find("# factor.bytes: 64 4096"), std::string::npos);
  EXPECT_NE(text.find("x\n"), std::string::npos);
}

TEST(Dataset, RoundTripThroughFile) {
  const std::string path = ::testing::TempDir() + "/scibench_roundtrip.csv";
  {
    Dataset ds(make_experiment(), {"bytes", "latency_us"});
    ds.add_row({64.0, 1.6625});
    ds.add_row({128.0, 1.75});
    ds.add_row({4096.0, 2.875});
    ds.save_csv(path);
  }
  const auto loaded = Dataset::load_csv(path);
  EXPECT_EQ(loaded.rows(), 3u);
  EXPECT_EQ(loaded.columns(), (std::vector<std::string>{"bytes", "latency_us"}));
  EXPECT_DOUBLE_EQ(loaded.column("latency_us")[2], 2.875);
  // Provenance preserved in description.
  EXPECT_NE(loaded.experiment().description.find("latency_sweep"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Dataset, FullPrecisionRoundTrip) {
  const std::string path = ::testing::TempDir() + "/scibench_precision.csv";
  const double value = 1.0 / 3.0;
  {
    Dataset ds(make_experiment(), {"v"});
    ds.add_row({value});
    ds.save_csv(path);
  }
  const auto loaded = Dataset::load_csv(path);
  EXPECT_EQ(loaded.column("v")[0], value);  // bit-exact via %.17g
  std::remove(path.c_str());
}

TEST(Dataset, LoadMissingFileThrows) {
  EXPECT_THROW(Dataset::load_csv("/nonexistent/nope.csv"), std::runtime_error);
}

namespace {

std::string write_temp(const std::string& name, const std::string& body) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::ofstream os(path);
  os << body;
  return path;
}

std::string load_error(const std::string& path) {
  try {
    (void)Dataset::load_csv(path);
  } catch (const std::exception& e) {
    return e.what();
  }
  return "";
}

}  // namespace

TEST(Dataset, MalformedCellReportsFileLineAndColumn) {
  const std::string path =
      write_temp("scibench_malformed.csv", "# comment\na,b\n1,2\n3,oops\n");
  const std::string what = load_error(path);
  std::remove(path.c_str());
  EXPECT_NE(what.find(path), std::string::npos) << what;
  EXPECT_NE(what.find(":4:"), std::string::npos) << what;  // 1-based line
  EXPECT_NE(what.find("column 2"), std::string::npos) << what;
  EXPECT_NE(what.find("'oops'"), std::string::npos) << what;
}

TEST(Dataset, TrailingGarbageAfterNumberIsMalformed) {
  const std::string path = write_temp("scibench_trailing.csv", "a\n1.5x\n");
  const std::string what = load_error(path);
  std::remove(path.c_str());
  EXPECT_NE(what.find("'1.5x'"), std::string::npos) << what;
}

TEST(Dataset, RowArityMismatchReportsLine) {
  const std::string path = write_temp("scibench_arity.csv", "a,b\n1,2\n3\n");
  const std::string what = load_error(path);
  std::remove(path.c_str());
  EXPECT_NE(what.find(":3:"), std::string::npos) << what;
  EXPECT_NE(what.find("expected 2 cells, got 1"), std::string::npos) << what;
}

TEST(Dataset, AcceptsInfNanAndWhitespaceAndCrlf) {
  const std::string path =
      write_temp("scibench_lenient.csv", "a,b\r\n 1 ,\tinf\r\n-2,nan\r\n");
  const auto loaded = Dataset::load_csv(path);
  std::remove(path.c_str());
  ASSERT_EQ(loaded.rows(), 2u);
  EXPECT_EQ(loaded.column("a"), (std::vector<double>{1.0, -2.0}));
  EXPECT_TRUE(std::isinf(loaded.column("b")[0]));
  EXPECT_TRUE(std::isnan(loaded.column("b")[1]));
}

TEST(Dataset, RejectsColumnNamesThatBreakCsv) {
  EXPECT_THROW(Dataset(make_experiment(), {"a,b"}), std::invalid_argument);
  EXPECT_THROW(Dataset(make_experiment(), {"a\nb"}), std::invalid_argument);
}

TEST(HeaderEscaping, RoundTripsControlCharacters) {
  const std::string nasty = "path\\x, with, commas\nand a\rCR";
  EXPECT_EQ(unescape_header_text(escape_header_text(nasty)), nasty);
  EXPECT_EQ(escape_header_text(nasty).find('\n'), std::string::npos);
  EXPECT_EQ(escape_header_text(nasty).find('\r'), std::string::npos);
  EXPECT_EQ(escape_header_text("plain"), "plain");
}

TEST(HeaderEscaping, EnvValuesWithNewlinesSurviveCsvRoundTrip) {
  Experiment e;
  e.name = "escaped";
  // Once upon a time this newline spilled into an unprefixed CSV line
  // and the file came back unreadable.
  e.set("cmdline", "./bench --flags=a,b\n--second-line");
  const std::string path = ::testing::TempDir() + "/scibench_escaped.csv";
  {
    Dataset ds(e, {"v"});
    ds.add_row({1.0});
    ds.save_csv(path);
  }
  // Every header line is '#'-prefixed; the data parses.
  std::ifstream is(path);
  std::string line;
  std::size_t header_lines = 0;
  while (std::getline(is, line)) {
    if (!line.empty() && line[0] == '#') ++header_lines;
    EXPECT_TRUE(line.empty() || line[0] == '#' || line.find("cmdline") == std::string::npos)
        << "unescaped header spill: " << line;
  }
  EXPECT_GT(header_lines, 0u);
  const auto loaded = Dataset::load_csv(path);
  std::remove(path.c_str());
  EXPECT_EQ(loaded.rows(), 1u);
  EXPECT_NE(loaded.experiment().description.find("\\n--second-line"), std::string::npos)
      << loaded.experiment().description;
}

TEST(Dataset, SaveCsvToUnwritablePathThrows) {
  Dataset ds(make_experiment(), {"v"});
  ds.add_row({1.0});
  EXPECT_THROW(ds.save_csv("/nonexistent-dir/out.csv"), std::runtime_error);
}

}  // namespace
}  // namespace sci::core
