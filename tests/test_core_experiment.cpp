#include <gtest/gtest.h>

#include "core/experiment.hpp"

namespace sci::core {
namespace {

Experiment documented_experiment() {
  Experiment e;
  e.name = "pingpong";
  e.description = "64 B ping-pong latency";
  e.set("hardware.cpu", "Xeon E5-2690 v3").set("software.compiler", "gcc 4.8.2 -O3");
  e.add_factor("message_size", {"64", "4096"});
  e.synchronization_method = "window";
  e.summary_across_processes = "max";
  return e;
}

TEST(Experiment, HeaderContainsAllSections) {
  const auto e = documented_experiment();
  const auto header = e.to_header();
  EXPECT_NE(header.find("experiment: pingpong"), std::string::npos);
  EXPECT_NE(header.find("env.hardware.cpu: Xeon E5-2690 v3"), std::string::npos);
  EXPECT_NE(header.find("factor.message_size: 64 4096"), std::string::npos);
  EXPECT_NE(header.find("sync: window"), std::string::npos);
  EXPECT_NE(header.find("process-summary: max"), std::string::npos);
}

TEST(Experiment, CleanExperimentPassesAudit) {
  EXPECT_TRUE(documented_experiment().audit().empty());
}

TEST(Experiment, AuditFlagsMissingEnvironment) {
  Experiment e;
  e.name = "bare";
  const auto issues = e.audit();
  ASSERT_FALSE(issues.empty());
  EXPECT_NE(issues.front().find("Rule 9"), std::string::npos);
}

TEST(Experiment, AuditFlagsUndocumentedSubset) {
  auto e = documented_experiment();
  e.uses_subset = true;  // no reason given
  bool found = false;
  for (const auto& issue : e.audit()) {
    if (issue.find("Rule 2") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
  e.subset_reason = "compiler transformation only applies to C benchmarks";
  EXPECT_TRUE(e.audit().empty());
}

TEST(Experiment, AuditFlagsWeakScalingWithoutFunction) {
  auto e = documented_experiment();
  e.scaling = ScalingMode::kWeak;
  bool found = false;
  for (const auto& issue : e.audit()) {
    if (issue.find("weak scaling") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
  e.weak_scaling_function = "n = 10^6 * p";
  EXPECT_TRUE(e.audit().empty());
  EXPECT_NE(e.to_header().find("weak"), std::string::npos);
}

TEST(Experiment, AuditFlagsEmptyFactorLevels) {
  auto e = documented_experiment();
  e.add_factor("empty_factor", {});
  bool found = false;
  for (const auto& issue : e.audit()) {
    if (issue.find("empty_factor") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Experiment, SubsetWithoutReasonVisibleInHeader) {
  auto e = documented_experiment();
  e.uses_subset = true;
  EXPECT_NE(e.to_header().find("no reason given"), std::string::npos);
}

TEST(ScalingMode, Names) {
  EXPECT_STREQ(to_string(ScalingMode::kStrong), "strong");
  EXPECT_STREQ(to_string(ScalingMode::kWeak), "weak");
  EXPECT_STREQ(to_string(ScalingMode::kNotApplicable), "n/a");
}

}  // namespace
}  // namespace sci::core
