#include <gtest/gtest.h>

#include <vector>

#include "core/measurement.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"

namespace sci::core {
namespace {

TEST(SummarizeSeries, DeterministicDetected) {
  const std::vector<double> v(20, 3.14);
  const auto s = summarize_series(v);
  EXPECT_TRUE(s.deterministic);
  EXPECT_EQ(s.representative, 3.14);
  EXPECT_EQ(s.representative_kind, "deterministic value");
  EXPECT_FALSE(s.mean_ci.has_value());
}

TEST(SummarizeSeries, NearDeterministicWithTolerance) {
  std::vector<double> v(20, 100.0);
  v[3] = 100.0001;  // 1e-6 relative wiggle
  SummaryOptions opts;
  opts.deterministic_rtol = 1e-4;
  EXPECT_TRUE(summarize_series(v, opts).deterministic);
  opts.deterministic_rtol = 0.0;
  EXPECT_FALSE(summarize_series(v, opts).deterministic);
}

TEST(SummarizeSeries, NormalDataGetsMeanAndParametricCi) {
  rng::Xoshiro256 gen(1);
  std::vector<double> v;
  for (int i = 0; i < 200; ++i) v.push_back(rng::normal(gen, 50.0, 5.0));
  const auto s = summarize_series(v);
  EXPECT_FALSE(s.deterministic);
  EXPECT_TRUE(s.normal_plausible);
  EXPECT_EQ(s.representative_kind, "mean");
  ASSERT_TRUE(s.mean_ci.has_value());
  EXPECT_TRUE(s.mean_ci->contains(s.mean));
  ASSERT_TRUE(s.median_ci.has_value());  // always available with n > 5
}

TEST(SummarizeSeries, SkewedDataGetsMedianRepresentative) {
  rng::Xoshiro256 gen(2);
  std::vector<double> v;
  for (int i = 0; i < 500; ++i) v.push_back(rng::lognormal(gen, 0.0, 1.0));
  const auto s = summarize_series(v);
  EXPECT_FALSE(s.normal_plausible);           // Rule 6 at work
  EXPECT_FALSE(s.mean_ci.has_value());        // no unfounded parametric CI
  EXPECT_EQ(s.representative_kind, "median");
  ASSERT_TRUE(s.median_ci.has_value());
  EXPECT_TRUE(s.median_ci->contains(s.median));
}

TEST(SummarizeSeries, QuantilesOrdered) {
  rng::Xoshiro256 gen(3);
  std::vector<double> v;
  for (int i = 0; i < 1000; ++i) v.push_back(rng::exponential(gen, 1.0));
  const auto s = summarize_series(v);
  EXPECT_LE(s.min, s.q1);
  EXPECT_LE(s.q1, s.median);
  EXPECT_LE(s.median, s.q3);
  EXPECT_LE(s.q3, s.p95);
  EXPECT_LE(s.p95, s.p99);
  EXPECT_LE(s.p99, s.max);
  EXPECT_GT(s.cov, 0.0);
}

TEST(SummarizeSeries, VeryLongSeriesThinnedForNormalityTest) {
  rng::Xoshiro256 gen(4);
  std::vector<double> v;
  for (int i = 0; i < 50000; ++i) v.push_back(rng::lognormal(gen, 0.0, 0.5));
  const auto s = summarize_series(v);  // must not throw (SW caps at 5000)
  ASSERT_TRUE(s.normality.has_value());
  EXPECT_FALSE(s.normal_plausible);
}

TEST(SummarizeSeries, TinySeriesHasNoCis) {
  const std::vector<double> v = {1.0, 2.0};
  const auto s = summarize_series(v);
  EXPECT_FALSE(s.deterministic);
  EXPECT_FALSE(s.median_ci.has_value());  // needs n > 5
  EXPECT_EQ(s.n, 2u);
}

TEST(SummarizeSeries, EmptyThrows) {
  EXPECT_THROW(summarize_series({}), std::invalid_argument);
}

}  // namespace
}  // namespace sci::core
