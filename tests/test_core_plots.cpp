#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "core/plots.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"

namespace sci::core {
namespace {

std::vector<double> lognormal_sample(std::size_t n, std::uint64_t seed) {
  rng::Xoshiro256 gen(seed);
  std::vector<double> v;
  for (std::size_t i = 0; i < n; ++i) v.push_back(rng::lognormal(gen, 0.0, 0.5));
  return v;
}

TEST(Plots, DensityContainsMarkersAndAxis) {
  const auto v = lognormal_sample(2000, 1);
  PlotOptions opts;
  opts.title = "latency density";
  opts.x_label = "us";
  const auto text = render_density(v, opts);
  EXPECT_NE(text.find("latency density"), std::string::npos);
  EXPECT_NE(text.find("M=median"), std::string::npos);
  EXPECT_NE(text.find("A=mean"), std::string::npos);
  EXPECT_NE(text.find("[us]"), std::string::npos);
  EXPECT_NE(text.find('*'), std::string::npos);
}

TEST(Plots, BoxShowsEverySeries) {
  std::vector<NamedSeries> series = {{"dora", lognormal_sample(500, 2)},
                                     {"pilatus", lognormal_sample(500, 3)}};
  const auto text = render_box(series, {});
  EXPECT_NE(text.find("dora"), std::string::npos);
  EXPECT_NE(text.find("pilatus"), std::string::npos);
  EXPECT_NE(text.find('M'), std::string::npos);
  EXPECT_NE(text.find('['), std::string::npos);
  EXPECT_NE(text.find("whiskers"), std::string::npos);
}

TEST(Plots, ViolinShowsDensityRamp) {
  std::vector<NamedSeries> series = {{"a", lognormal_sample(2000, 4)}};
  const auto text = render_violin(series, {});
  EXPECT_NE(text.find('#'), std::string::npos);
  EXPECT_NE(text.find("quartiles"), std::string::npos);
}

TEST(Plots, QqReportsCorrelation) {
  const auto text = render_qq(lognormal_sample(1000, 5), {});
  EXPECT_NE(text.find("r(QQ)="), std::string::npos);
  EXPECT_NE(text.find('o'), std::string::npos);
}

TEST(Plots, XyMultipleSeriesWithLegend) {
  XYSeries measured{"measured", 'o', {1, 2, 4, 8}, {10, 6, 4, 3}};
  XYSeries ideal{"ideal", '.', {1, 2, 4, 8}, {10, 5, 2.5, 1.25}};
  PlotOptions opts;
  opts.x_label = "processes";
  const auto text = render_xy(std::vector<XYSeries>{measured, ideal}, opts);
  EXPECT_NE(text.find("o=measured"), std::string::npos);
  EXPECT_NE(text.find(".=ideal"), std::string::npos);
  EXPECT_NE(text.find("[processes]"), std::string::npos);
}

TEST(Plots, XyLogScale) {
  XYSeries s{"t", '*', {1, 10, 100}, {1.0, 100.0, 10000.0}};
  const auto text = render_xy(std::vector<XYSeries>{s}, {}, /*log_y=*/true);
  EXPECT_NE(text.find("log scale"), std::string::npos);
}

TEST(Plots, DegenerateInputsSafe) {
  // Constant series: ranges collapse; renderers must not divide by zero.
  const std::vector<double> constant(100, 5.0);
  EXPECT_NO_THROW(render_density(constant, {}));
  std::vector<NamedSeries> series = {{"const", constant}};
  EXPECT_NO_THROW(render_box(series, {}));
  EXPECT_NO_THROW(render_qq(constant, {}));
}

TEST(Plots, EmptyInputsThrow) {
  EXPECT_THROW(render_density({}, {}), std::invalid_argument);
  EXPECT_THROW(render_box({}, {}), std::invalid_argument);
  EXPECT_THROW(render_xy({}, {}), std::invalid_argument);
}

TEST(Plots, WidthRespected) {
  const auto v = lognormal_sample(500, 6);
  PlotOptions opts;
  opts.width = 40;
  const auto text = render_density(v, opts);
  // Interior lines are width + 2 frame chars.
  std::istringstream is(text);
  std::string line;
  std::getline(is, line);  // skip potential title
  while (std::getline(is, line)) {
    if (!line.empty() && line.front() == '|') {
      EXPECT_LE(line.size(), 42u + 40u);  // frame + annotation slack
    }
  }
}

}  // namespace
}  // namespace sci::core
