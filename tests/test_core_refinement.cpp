#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "core/refinement.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"

namespace sci::core {
namespace {

TEST(Refinement, BudgetRespectedAndSorted) {
  rng::Xoshiro256 gen(1);
  std::size_t calls = 0;
  RefinementOptions opts;
  opts.total_budget = 200;
  const auto levels = measure_adaptive_levels(
      [&](double level) {
        ++calls;
        return level + rng::normal(gen, 0.0, 0.1);
      },
      {1.0, 2.0, 4.0, 8.0}, opts);
  EXPECT_LE(calls, 200u);
  EXPECT_GE(calls, 40u);  // initial sampling happened
  for (std::size_t i = 1; i < levels.size(); ++i) {
    EXPECT_GT(levels[i].level, levels[i - 1].level);
  }
  for (const auto& lvl : levels) {
    EXPECT_EQ(lvl.samples.size() >= 5, true);
    EXPECT_LE(lvl.ci.lower, lvl.median);
    EXPECT_GE(lvl.ci.upper, lvl.median);
  }
}

TEST(Refinement, SpendsBudgetOnNoisyLevels) {
  // Level 100 is 30x noisier than the others: it must receive the bulk
  // of the refinement budget.
  rng::Xoshiro256 gen(2);
  RefinementOptions opts;
  opts.total_budget = 400;
  opts.insert_midpoints = false;
  const auto levels = measure_adaptive_levels(
      [&](double level) {
        const double sigma = (level == 100.0) ? 30.0 : 1.0;
        return 1000.0 + rng::normal(gen, 0.0, sigma);
      },
      {10.0, 50.0, 100.0, 200.0}, opts);
  std::map<double, std::size_t> counts;
  for (const auto& lvl : levels) counts[lvl.level] = lvl.samples.size();
  EXPECT_GT(counts[100.0], 3 * counts[10.0]);
}

TEST(Refinement, InsertsMidpointsAtNonlinearity) {
  // Step function between 32 and 64 (e.g. an eager/rendezvous protocol
  // switch): the refiner should insert levels into that gap.
  rng::Xoshiro256 gen(3);
  RefinementOptions opts;
  opts.total_budget = 400;
  const auto levels = measure_adaptive_levels(
      [&](double level) {
        const double base = (level <= 40.0) ? 1.0 : 10.0;
        return base + rng::normal(gen, 0.0, 0.01);
      },
      {1.0, 16.0, 32.0, 64.0, 128.0, 256.0}, opts);
  bool inserted_in_gap = false;
  for (const auto& lvl : levels) {
    if (lvl.inserted && lvl.level > 16.0 && lvl.level < 128.0) inserted_in_gap = true;
  }
  EXPECT_TRUE(inserted_in_gap);
  EXPECT_GT(levels.size(), 6u);
}

TEST(Refinement, LinearDataNeedsNoMidpoints) {
  rng::Xoshiro256 gen(4);
  RefinementOptions opts;
  opts.total_budget = 300;
  const auto levels = measure_adaptive_levels(
      [&](double level) { return 3.0 * level + rng::normal(gen, 0.0, 0.001); },
      {10.0, 20.0, 30.0, 40.0}, opts);
  for (const auto& lvl : levels) EXPECT_FALSE(lvl.inserted);
}

TEST(Refinement, DeterministicMeasurementStopsEarly) {
  std::size_t calls = 0;
  RefinementOptions opts;
  opts.total_budget = 10000;
  opts.insert_midpoints = false;
  const auto levels = measure_adaptive_levels(
      [&](double level) {
        ++calls;
        return level * 2.0;  // exact
      },
      {1.0, 2.0, 3.0}, opts);
  // CIs have zero width everywhere: no point burning the budget.
  EXPECT_LT(calls, 100u);
  EXPECT_EQ(levels.size(), 3u);
}

TEST(Refinement, Validation) {
  const auto f = [](double) { return 1.0; };
  EXPECT_THROW(measure_adaptive_levels(nullptr, {1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(measure_adaptive_levels(f, {1.0}), std::invalid_argument);
  EXPECT_THROW(measure_adaptive_levels(f, {2.0, 1.0}), std::invalid_argument);
  RefinementOptions tiny;
  tiny.total_budget = 5;  // below initial sampling
  EXPECT_THROW(measure_adaptive_levels(f, {1.0, 2.0}, tiny), std::invalid_argument);
}

}  // namespace
}  // namespace sci::core
