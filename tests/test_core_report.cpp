#include <gtest/gtest.h>

#include <vector>

#include "core/plots.hpp"
#include "core/report.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"

namespace sci::core {
namespace {

Experiment full_experiment() {
  Experiment e;
  e.name = "latency_comparison";
  e.set("hardware", "simulated Cray XC40").set("software", "scibench 1.0");
  e.add_factor("system", {"dora", "pilatus"});
  e.synchronization_method = "window";
  e.summary_across_processes = "max";
  return e;
}

Series skewed_series(const std::string& name, std::uint64_t seed) {
  rng::Xoshiro256 gen(seed);
  Series s;
  s.name = name;
  s.unit = "us";
  for (int i = 0; i < 300; ++i) s.values.push_back(rng::lognormal(gen, 0.5, 0.4));
  return s;
}

bool rule_satisfied(const std::vector<RuleCheck>& checks, int rule) {
  for (const auto& c : checks) {
    if (c.rule == rule) return c.satisfied;
  }
  return false;
}

TEST(Report, RenderContainsSummaries) {
  ReportBuilder builder(full_experiment());
  builder.add_series(skewed_series("dora", 1));
  const auto text = builder.render();
  EXPECT_NE(text.find("latency_comparison"), std::string::npos);
  EXPECT_NE(text.find("series dora [us]"), std::string::npos);
  EXPECT_NE(text.find("median="), std::string::npos);
  EXPECT_NE(text.find("CI95%(median)"), std::string::npos);
  EXPECT_NE(text.find("p99="), std::string::npos);
  EXPECT_NE(text.find("Shapiro-Wilk"), std::string::npos);
}

TEST(Report, DeterministicSeriesRenderedAsSuch) {
  ReportBuilder builder(full_experiment());
  Series s;
  s.name = "flops";
  s.unit = "flop";
  s.values.assign(10, 1000.0);
  builder.add_series(s);
  EXPECT_NE(builder.render().find("deterministic: 1000"), std::string::npos);
}

TEST(Report, FullReportPassesAllTwelveRules) {
  ReportBuilder builder(full_experiment());
  const auto dora = skewed_series("dora", 2);
  const auto pilatus = skewed_series("pilatus", 3);
  builder.add_series(dora).add_series(pilatus);
  builder.declare_units_convention();

  SpeedupReport speedup;
  speedup.base_case = BaseCase::kBestSerial;
  speedup.base_absolute = 20e-3;
  speedup.base_unit = "s";
  speedup.processes = {2, 4};
  speedup.speedups = {1.9, 3.6};
  builder.add_speedup(speedup);

  builder.add_comparison("dora", "pilatus", "Kruskal-Wallis", 0.001, 0.4);
  builder.add_bound("dora", "LogGP lower bound", 1.5);
  builder.add_plot(render_density(dora.values, {}));

  const auto checks = builder.audit();
  ASSERT_EQ(checks.size(), 12u);
  for (const auto& c : checks) {
    EXPECT_TRUE(c.satisfied || !c.applicable) << "Rule " << c.rule << ": " << c.note;
  }
  const auto audit_text = ReportBuilder::render_audit(checks);
  EXPECT_NE(audit_text.find("Rule 12"), std::string::npos);
  EXPECT_EQ(audit_text.find("[ ]"), std::string::npos);  // nothing unsatisfied
}

TEST(Report, BareReportFailsSeveralRules) {
  Experiment bare;
  bare.name = "bare";
  ReportBuilder builder(bare);
  builder.add_series(skewed_series("x", 4));
  const auto checks = builder.audit();
  EXPECT_FALSE(rule_satisfied(checks, 9));   // no environment documented
  EXPECT_FALSE(rule_satisfied(checks, 10));  // no sync/summarization methods
  EXPECT_FALSE(rule_satisfied(checks, 11));  // no bounds
  EXPECT_FALSE(rule_satisfied(checks, 12));  // no plots
  EXPECT_TRUE(rule_satisfied(checks, 5));    // CIs always computed for n > 5
}

TEST(Report, SpeedupWithoutBaseFailsRule1) {
  ReportBuilder builder(full_experiment());
  SpeedupReport bad;
  bad.base_case = BaseCase::kSingleParallelProcess;
  bad.base_absolute = 0.0;  // Rule 1 violation
  builder.add_speedup(bad);
  EXPECT_FALSE(rule_satisfied(builder.audit(), 1));
}

TEST(Report, SubsetWithoutReasonFailsRule2) {
  auto e = full_experiment();
  e.uses_subset = true;
  ReportBuilder builder(e);
  EXPECT_FALSE(rule_satisfied(builder.audit(), 2));
}

TEST(Report, AuditRendering) {
  ReportBuilder builder(full_experiment());
  const auto text = ReportBuilder::render_audit(builder.audit());
  EXPECT_NE(text.find("Twelve-rule audit"), std::string::npos);
  // Rule 1 inapplicable without speedups: rendered as [-].
  EXPECT_NE(text.find("[-] Rule  1"), std::string::npos);
}

TEST(Report, MarkdownRenderingContainsSections) {
  ReportBuilder builder(full_experiment());
  builder.add_series(skewed_series("dora", 11));
  builder.add_series({"flops", "flop", std::vector<double>(8, 500.0)});
  builder.add_comparison("dora", "flops", "ANOVA", 0.01, 0.5);
  builder.add_bound("dora", "LogGP", 1.5);
  builder.add_plot("PLOT-BODY");
  const auto md = builder.render_markdown();
  EXPECT_NE(md.find("## latency_comparison"), std::string::npos);
  EXPECT_NE(md.find("### Setup (Rule 9)"), std::string::npos);
  EXPECT_NE(md.find("| series |"), std::string::npos);
  EXPECT_NE(md.find("| dora [us] |"), std::string::npos);
  EXPECT_NE(md.find("deterministic"), std::string::npos);  // flops row
  EXPECT_NE(md.find("### Comparisons (Rule 7)"), std::string::npos);
  EXPECT_NE(md.find("### Bounds (Rule 11)"), std::string::npos);
  EXPECT_NE(md.find("PLOT-BODY"), std::string::npos);
  EXPECT_NE(md.find("- [x] Rule 12"), std::string::npos);
}

TEST(Report, MarkdownAuditMarksFailures) {
  Experiment bare;
  bare.name = "bare";
  ReportBuilder builder(bare);
  const auto md = builder.render_markdown();
  EXPECT_NE(md.find("- [ ] Rule 9"), std::string::npos);   // undocumented
  EXPECT_NE(md.find("- [x] Rule 10"), std::string::npos);  // n/a counts as checked
  EXPECT_NE(md.find("*(n/a)*"), std::string::npos);
}

TEST(Report, ComparisonAndBoundLinesRendered) {
  ReportBuilder builder(full_experiment());
  builder.add_comparison("a", "b", "ANOVA", 0.03, 0.7);
  builder.add_bound("a", "ideal", 2.0);
  const auto text = builder.render();
  EXPECT_NE(text.find("compare a vs b (ANOVA)"), std::string::npos);
  EXPECT_NE(text.find("bound[a] ideal <= 2"), std::string::npos);
}

}  // namespace
}  // namespace sci::core
