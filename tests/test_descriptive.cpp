#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"
#include "stats/descriptive.hpp"

namespace sci::stats {
namespace {

TEST(Means, PaperHplExampleValues) {
  // Section 3.1.1: times (10, 100, 40) s for 100 Gflop.
  const std::vector<double> times = {10.0, 100.0, 40.0};
  EXPECT_NEAR(arithmetic_mean(times), 50.0, 1e-12);  // -> 2 Gflop/s
  const std::vector<double> rates = {10.0, 1.0, 2.5};  // Gflop/s per run
  EXPECT_NEAR(arithmetic_mean(rates), 4.5, 1e-12);     // the wrong summary
  EXPECT_NEAR(harmonic_mean(rates), 2.0, 1e-12);       // the right one
}

TEST(Means, GeometricKnownValue) {
  const std::vector<double> v = {1.0, 0.1, 0.25};
  EXPECT_NEAR(geometric_mean(v), std::cbrt(0.025), 1e-12);  // ~0.292
}

TEST(Means, MeanInequalityChain) {
  // AM >= GM >= HM for positive data (Gwanyama).
  rng::Xoshiro256 gen(1);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> v;
    for (int i = 0; i < 20; ++i) v.push_back(rng::uniform(gen, 0.1, 10.0));
    const double am = arithmetic_mean(v);
    const double gm = geometric_mean(v);
    const double hm = harmonic_mean(v);
    EXPECT_GE(am, gm - 1e-12);
    EXPECT_GE(gm, hm - 1e-12);
  }
}

TEST(Means, RejectEmptyAndNonPositive) {
  const std::vector<double> empty;
  EXPECT_THROW((void)arithmetic_mean(empty), std::invalid_argument);
  const std::vector<double> with_zero = {1.0, 0.0};
  EXPECT_THROW((void)harmonic_mean(with_zero), std::domain_error);
  EXPECT_THROW((void)geometric_mean(with_zero), std::domain_error);
}

TEST(Variance, MatchesHandComputation) {
  const std::vector<double> v = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  // mean 5, sum of squares 32, n-1 = 7.
  EXPECT_NEAR(sample_variance(v), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(sample_stddev(v), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_NEAR(coefficient_of_variation(v), std::sqrt(32.0 / 7.0) / 5.0, 1e-12);
}

TEST(Variance, SingleSampleIsZero) {
  const std::vector<double> v = {3.0};
  EXPECT_EQ(sample_variance(v), 0.0);
}

TEST(Moments, SkewAndKurtosisOfSymmetricData) {
  const std::vector<double> v = {-2, -1, 0, 1, 2};
  EXPECT_NEAR(skewness(v), 0.0, 1e-12);
  // Uniform-ish: platykurtic, negative excess kurtosis.
  EXPECT_LT(excess_kurtosis(v), 0.0);
}

TEST(Moments, RightSkewPositive) {
  const std::vector<double> v = {1, 1, 1, 1, 10};
  EXPECT_GT(skewness(v), 1.0);
}

TEST(Quantile, MedianOddEven) {
  const std::vector<double> odd = {3.0, 1.0, 2.0};
  EXPECT_EQ(median(odd), 2.0);
  const std::vector<double> even = {4.0, 1.0, 3.0, 2.0};
  EXPECT_NEAR(median(even), 2.5, 1e-12);  // R7 interpolation
}

TEST(Quantile, R1AlwaysReturnsObservedValue) {
  const std::vector<double> v = {5.0, 1.0, 9.0, 3.0, 7.0};
  for (double p : {0.01, 0.2, 0.35, 0.5, 0.77, 0.99}) {
    const double q = quantile(v, p, QuantileMethod::kR1InverseEcdf);
    EXPECT_TRUE(q == 1.0 || q == 3.0 || q == 5.0 || q == 7.0 || q == 9.0) << p;
  }
}

class QuantileMethods : public ::testing::TestWithParam<QuantileMethod> {};

TEST_P(QuantileMethods, MonotoneInP) {
  rng::Xoshiro256 gen(3);
  std::vector<double> v;
  for (int i = 0; i < 101; ++i) v.push_back(rng::normal(gen));
  double prev = quantile(v, 0.0, GetParam());
  for (double p = 0.05; p <= 1.0; p += 0.05) {
    const double q = quantile(v, p, GetParam());
    EXPECT_GE(q, prev - 1e-12);
    prev = q;
  }
}

TEST_P(QuantileMethods, ExtremesAreMinMax) {
  const std::vector<double> v = {4.0, -1.0, 2.5, 8.0};
  EXPECT_EQ(quantile(v, 0.0, GetParam()), -1.0);
  EXPECT_EQ(quantile(v, 1.0, GetParam()), 8.0);
}

INSTANTIATE_TEST_SUITE_P(AllMethods, QuantileMethods,
                         ::testing::Values(QuantileMethod::kR1InverseEcdf,
                                           QuantileMethod::kR6Weibull,
                                           QuantileMethod::kR7Linear));

TEST(BoxStats, FiveNumberSummaryAndWhiskers) {
  std::vector<double> v;
  for (int i = 1; i <= 11; ++i) v.push_back(i);  // 1..11
  v.push_back(100.0);                            // clear outlier
  const auto b = box_stats(v);
  EXPECT_EQ(b.n, 12u);
  EXPECT_EQ(b.min, 1.0);
  EXPECT_EQ(b.max, 100.0);
  EXPECT_EQ(b.outliers_high, 1u);
  EXPECT_EQ(b.outliers_low, 0u);
  EXPECT_EQ(b.whisker_high, 11.0);  // highest non-outlier
  EXPECT_EQ(b.whisker_low, 1.0);
  EXPECT_GT(b.iqr, 0.0);
}

TEST(OnlineMoments, MatchesTwoPass) {
  rng::Xoshiro256 gen(4);
  std::vector<double> v;
  OnlineMoments om;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng::lognormal(gen, 0.0, 1.0);
    v.push_back(x);
    om.add(x);
  }
  EXPECT_EQ(om.count(), v.size());
  EXPECT_NEAR(om.mean(), arithmetic_mean(v), 1e-9);
  EXPECT_NEAR(om.variance(), sample_variance(v), 1e-7);
  EXPECT_EQ(om.min(), min_value(v));
  EXPECT_EQ(om.max(), max_value(v));
}

TEST(OnlineMoments, MergeEqualsSequential) {
  rng::Xoshiro256 gen(5);
  OnlineMoments all, left, right;
  for (int i = 0; i < 5000; ++i) {
    const double x = rng::normal(gen, 2.0, 3.0);
    all.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-8);
}

TEST(OnlineMoments, MergeWithEmpty) {
  OnlineMoments a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);  // no-op
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);  // adopt
  EXPECT_EQ(b.count(), 2u);
  EXPECT_NEAR(b.mean(), 2.0, 1e-12);
}

TEST(Midranks, HandlesTies) {
  const std::vector<double> v = {10.0, 20.0, 20.0, 30.0};
  const auto r = midranks(v);
  EXPECT_EQ(r[0], 1.0);
  EXPECT_EQ(r[1], 2.5);
  EXPECT_EQ(r[2], 2.5);
  EXPECT_EQ(r[3], 4.0);
}

TEST(Midranks, AllTiedGetAverageRank) {
  const std::vector<double> v = {7.0, 7.0, 7.0};
  const auto r = midranks(v);
  for (double x : r) EXPECT_EQ(x, 2.0);
}

}  // namespace
}  // namespace sci::stats
