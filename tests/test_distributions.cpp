#include <gtest/gtest.h>

#include <cmath>

#include "stats/distributions.hpp"

namespace sci::stats {
namespace {

TEST(StudentTDist, TableCriticalValues) {
  // Classic two-sided critical values t(dof, 0.05/2).
  EXPECT_NEAR(StudentT{1.0}.critical_two_sided(0.05), 12.706, 0.01);
  EXPECT_NEAR(StudentT{5.0}.critical_two_sided(0.05), 2.571, 0.005);
  EXPECT_NEAR(StudentT{10.0}.critical_two_sided(0.05), 2.228, 0.005);
  EXPECT_NEAR(StudentT{30.0}.critical_two_sided(0.05), 2.042, 0.005);
  EXPECT_NEAR(StudentT{10.0}.critical_two_sided(0.01), 3.169, 0.005);
  // Converges to the normal critical value for large dof.
  EXPECT_NEAR(StudentT{100000.0}.critical_two_sided(0.05), 1.960, 0.002);
}

TEST(StudentTDist, CdfSymmetry) {
  const StudentT t{7.0};
  for (double x : {0.5, 1.0, 2.7}) {
    EXPECT_NEAR(t.cdf(x) + t.cdf(-x), 1.0, 1e-12);
  }
  EXPECT_NEAR(t.cdf(0.0), 0.5, 1e-12);
}

TEST(StudentTDist, PdfIntegratesToCdf) {
  const StudentT t{4.0};
  double acc = 0.0;
  const int steps = 20000;
  for (int i = 0; i < steps; ++i) {
    const double x0 = -3.0 + 6.0 * i / steps;
    const double x1 = -3.0 + 6.0 * (i + 1) / steps;
    acc += 0.5 * (t.pdf(x0) + t.pdf(x1)) * (x1 - x0);
  }
  EXPECT_NEAR(acc, t.cdf(3.0) - t.cdf(-3.0), 1e-6);
}

TEST(ChiSquaredDist, TableValues) {
  // chi2 upper 5% critical values.
  EXPECT_NEAR(ChiSquared{1.0}.quantile(0.95), 3.841, 0.005);
  EXPECT_NEAR(ChiSquared{2.0}.quantile(0.95), 5.991, 0.005);
  EXPECT_NEAR(ChiSquared{10.0}.quantile(0.95), 18.307, 0.01);
  EXPECT_NEAR(ChiSquared{2.0}.quantile(0.99), 9.210, 0.01);
}

TEST(ChiSquaredDist, CdfOfMeanIsReasonable) {
  // Mean of chi2(k) is k; CDF at the mean is between 0.5 and 0.7.
  for (double k : {1.0, 4.0, 20.0}) {
    const double c = ChiSquared{k}.cdf(k);
    EXPECT_GT(c, 0.5);
    EXPECT_LT(c, 0.7);
  }
}

TEST(FisherFDist, TableValues) {
  // F upper 5% critical values F(d1, d2, 0.95).
  EXPECT_NEAR((FisherF{1.0, 10.0}.quantile(0.95)), 4.965, 0.01);
  EXPECT_NEAR((FisherF{3.0, 20.0}.quantile(0.95)), 3.098, 0.01);
  EXPECT_NEAR((FisherF{5.0, 5.0}.quantile(0.95)), 5.050, 0.01);
}

TEST(FisherFDist, CdfQuantileRoundTrip) {
  const FisherF f{4.0, 17.0};
  for (double p : {0.05, 0.5, 0.9, 0.99}) {
    EXPECT_NEAR(f.cdf(f.quantile(p)), p, 1e-8);
  }
}

TEST(FisherFDist, RelationToStudentT) {
  // t(v)^2 ~ F(1, v): quantile consistency.
  const double v = 9.0;
  const double t975 = StudentT{v}.quantile(0.975);
  const double f95 = FisherF{1.0, v}.quantile(0.95);
  EXPECT_NEAR(t975 * t975, f95, 1e-6);
}

class NormalParams : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(NormalParams, QuantileCdfRoundTrip) {
  const auto [mean, sd] = GetParam();
  const Normal n{mean, sd};
  for (double p : {0.01, 0.25, 0.5, 0.75, 0.99}) {
    EXPECT_NEAR(n.cdf(n.quantile(p)), p, 1e-10);
  }
  EXPECT_NEAR(n.quantile(0.5), mean, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Shapes, NormalParams,
                         ::testing::Values(std::make_pair(0.0, 1.0),
                                           std::make_pair(5.0, 0.1),
                                           std::make_pair(-3.0, 10.0)));

}  // namespace
}  // namespace sci::stats
