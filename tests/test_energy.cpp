#include <gtest/gtest.h>

#include "hpl/sim_hpl.hpp"
#include "sim/machine.hpp"
#include "simmpi/comm.hpp"

namespace sci::simmpi {
namespace {

TEST(Energy, IdleOnlyJobMatchesClosedForm) {
  auto machine = sim::make_noiseless(4);
  machine.power = {.idle_w = 100.0, .compute_w = 50.0,
                   .net_j_per_msg = 0.0, .net_j_per_byte = 0.0};
  World world(machine, 2, 1);
  world.launch([](Comm& c) -> sim::Task<void> {
    if (c.rank() == 0) co_await c.compute(2.0);
  });
  world.run();
  // Makespan 2 s, 2 distinct nodes idle + 2 s compute on one rank.
  EXPECT_NEAR(world.energy_joules(), 100.0 * 2.0 * 2.0 + 50.0 * 2.0, 1e-6);
}

TEST(Energy, MessagesAddNicAndWireEnergy) {
  auto machine = sim::make_noiseless(4);
  machine.power = {.idle_w = 0.0, .compute_w = 0.0,
                   .net_j_per_msg = 1.0, .net_j_per_byte = 0.5};
  World world(machine, 2, 2);
  world.launch_on(0, [](Comm& c) -> sim::Task<void> {
    co_await c.send(1, 0, 100);
    co_await c.send(1, 1, 20);
  });
  world.launch_on(1, [](Comm& c) -> sim::Task<void> {
    (void)co_await c.recv(0, 0);
    (void)co_await c.recv(0, 1);
  });
  world.run();
  // 2 messages, 120 bytes.
  EXPECT_NEAR(world.energy_joules(), 2.0 * 1.0 + 120.0 * 0.5, 1e-9);
}

TEST(Energy, MoreWorkCostsMoreEnergy) {
  const auto machine = sim::make_daint();
  auto run = [&](double work) {
    World world(machine, 4, 3);
    world.launch([work](Comm& c) -> sim::Task<void> { co_await c.compute(work); });
    world.run();
    return world.energy_joules();
  };
  EXPECT_GT(run(1.0), run(0.1));
}

TEST(Energy, BusySecondsTracksComputes) {
  World world(sim::make_noiseless(4), 1, 4);
  world.launch([](Comm& c) -> sim::Task<void> {
    co_await c.compute(0.25);
    co_await c.compute(0.5);
  });
  world.run();
  EXPECT_NEAR(world.comm(0).busy_seconds(), 0.75, 1e-12);
}

TEST(Energy, SimulatedHplInPlausibleRange) {
  // 64 nodes at ~350 W for ~300 s: order 6-8 MJ, ~2.5-3.5 Gflop/J --
  // the K20X era's flop/W ballpark.
  const auto run = hpl::simulate_hpl_run(sim::make_daint(), hpl::SimHplConfig{}, 5);
  EXPECT_GT(run.energy_j, 4e6);
  EXPECT_LT(run.energy_j, 1e7);
  EXPECT_GT(run.gflops_per_watt(), 1.5);
  EXPECT_LT(run.gflops_per_watt(), 5.0);
}

TEST(Energy, DeterministicForSeed) {
  const auto machine = sim::make_daint();
  auto energy = [&] {
    World world(machine, 8, 5);
    world.launch([](Comm& c) -> sim::Task<void> {
      co_await c.compute(1e-3);
      co_await c.send((c.rank() + 1) % c.size(), 0, 64);
      (void)co_await c.recv((c.rank() - 1 + c.size()) % c.size(), 0);
    });
    world.run();
    return world.energy_joules();
  };
  EXPECT_EQ(energy(), energy());
}

}  // namespace
}  // namespace sci::simmpi
