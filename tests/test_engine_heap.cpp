// Hot-path contracts of the rewritten engine: the 4-ary arena heap must
// preserve the old priority_queue's exact dispatch order (time, then
// insertion sequence -- the byte-determinism anchor), and the
// InlineCallback + event arena must keep the steady-state loop free of
// per-event allocations, checked through the obs counter rather than
// assumed.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <queue>
#include <utility>
#include <vector>

#include "obs/counters.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"
#include "sim/callback.hpp"
#include "sim/engine.hpp"
#include "sim/machine.hpp"
#include "simmpi/comm.hpp"

namespace sci::sim {
namespace {

// ---------------------------------------------------------------------------
// InlineCallback unit tests
// ---------------------------------------------------------------------------

TEST(InlineCallback, SimulatorCaptureShapesStayInline) {
  // The shapes the simulator actually schedules (see simmpi/comm.cpp):
  // coroutine resumes, posted-recv resumes, message deliveries, and the
  // irecv completion (shared_ptr + 56-byte Message) -- the largest.
  struct FakeHandle {
    void* p;
  };
  struct FakeMessage {
    int src, dst, tag;
    std::size_t bytes;
    std::uint64_t seq;
    std::vector<double> payload;
  };
  FakeHandle h{nullptr};
  auto resume = [h] { (void)h; };
  static_assert(InlineCallback::stores_inline<decltype(resume)>());

  simmpi::World* w = nullptr;
  FakeMessage msg{};
  auto deliver = [w, m = std::move(msg)]() mutable { (void)w, (void)m; };
  static_assert(InlineCallback::stores_inline<decltype(deliver)>());

  auto state = std::make_shared<int>(0);
  FakeMessage msg2{};
  auto complete = [state, m = std::move(msg2)]() mutable { (void)state, (void)m; };
  static_assert(InlineCallback::stores_inline<decltype(complete)>());
}

TEST(InlineCallback, InvokesAndMoves) {
  int calls = 0;
  InlineCallback cb([&calls] { ++calls; });
  ASSERT_TRUE(static_cast<bool>(cb));
  cb();
  EXPECT_EQ(calls, 1);

  InlineCallback moved(std::move(cb));
  EXPECT_FALSE(static_cast<bool>(cb));  // NOLINT(bugprone-use-after-move): tested on purpose
  moved();
  EXPECT_EQ(calls, 2);

  InlineCallback assigned;
  assigned = std::move(moved);
  assigned();
  EXPECT_EQ(calls, 3);
}

TEST(InlineCallback, AcceptsMoveOnlyCallables) {
  // std::function would reject this outright (it requires copyability).
  auto flag = std::make_unique<bool>(false);
  InlineCallback cb([f = std::move(flag)] { *f = true; });
  cb();
}

TEST(InlineCallback, DestroysCaptureExactlyOnce) {
  auto counter = std::make_shared<int>(0);
  {
    InlineCallback cb([counter] {});
    EXPECT_EQ(counter.use_count(), 2);
    InlineCallback moved(std::move(cb));
    EXPECT_EQ(counter.use_count(), 2);  // relocation, not copy
    moved.reset();
    EXPECT_EQ(counter.use_count(), 1);
  }
  EXPECT_EQ(counter.use_count(), 1);
}

TEST(InlineCallback, OversizeCaptureFallsBackToHeapAndIsCounted) {
  struct Big {
    double payload[32];  // 256 bytes, well past kInlineBytes
  };
  static_assert(!InlineCallback::stores_inline<decltype([b = Big{}] { (void)b; })>());
  obs::Counter& heap_allocs = obs::counter(obs::keys::kEngineCallbackHeapAllocs);
  const std::uint64_t before = heap_allocs.value();
  Big big{};
  big.payload[7] = 42.0;
  double seen = 0.0;
  InlineCallback cb([big, &seen] { seen = big.payload[7]; });
  EXPECT_EQ(heap_allocs.value(), before + 1);
  InlineCallback moved(std::move(cb));  // moving the heap slot must not re-allocate
  moved();
  EXPECT_EQ(seen, 42.0);
  EXPECT_EQ(heap_allocs.value(), before + 1);
}

// ---------------------------------------------------------------------------
// Dispatch-order property + differential tests
// ---------------------------------------------------------------------------

/// Reference model: the pre-arena implementation, verbatim semantics --
/// std::priority_queue over (time, seq) with a strict tiebreaker.
class ReferenceEngine {
 public:
  void schedule_at(double time, std::function<void()> fn) {
    queue_.push(Event{time, next_seq_++, std::move(fn)});
  }
  void run() {
    while (!queue_.empty()) {
      Event ev = std::move(const_cast<Event&>(queue_.top()));
      queue_.pop();
      now_ = ev.time;
      ev.fn();
    }
  }
  [[nodiscard]] double now() const noexcept { return now_; }

 private:
  struct Event {
    double time;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
};

/// A randomized schedule plan: top-level events plus events spawned
/// from inside callbacks, replayable on any executor.
struct SchedulePlan {
  struct Spawn {
    double delay;  // relative to the parent's fire time
    int id;
  };
  struct Item {
    double time;
    int id;
    std::vector<Spawn> children;
  };
  std::vector<Item> items;
};

SchedulePlan random_plan(std::uint64_t seed, std::size_t n_events) {
  // Coarse time grid => massive tie pressure; ~1/4 of events spawn
  // children, some at zero delay (fires at the parent's own timestamp).
  rng::Xoshiro256 gen(seed);
  SchedulePlan plan;
  int next_id = 0;
  for (std::size_t i = 0; i < n_events; ++i) {
    SchedulePlan::Item item;
    item.time = static_cast<double>(rng::uniform_below(gen, 8));
    item.id = next_id++;
    const auto n_children = static_cast<std::size_t>(rng::uniform_below(gen, 4));
    if (n_children > 2) {
      for (std::size_t c = 0; c + 2 < n_children; ++c) {
        SchedulePlan::Spawn s;
        s.delay = static_cast<double>(rng::uniform_below(gen, 3));
        s.id = next_id++;
        item.children.push_back(s);
      }
    }
    plan.items.push_back(std::move(item));
  }
  return plan;
}

template <typename EngineT>
std::vector<int> dispatch_sequence(const SchedulePlan& plan, EngineT& engine) {
  std::vector<int> order;
  for (const auto& item : plan.items) {
    engine.schedule_at(item.time, [&engine, &order, &item] {
      order.push_back(item.id);
      for (const auto& child : item.children) {
        engine.schedule_at(engine.now() + child.delay, [&order, &child] {
          order.push_back(child.id);
        });
      }
    });
  }
  engine.run();
  return order;
}

TEST(EngineHeap, EqualTimeEventsFireInInsertionOrder) {
  // All events at one timestamp, including ones scheduled from inside a
  // callback at the same (current) time: strict FIFO within the tie.
  Engine engine;
  std::vector<int> order;
  for (int i = 0; i < 50; ++i) {
    engine.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  engine.schedule_at(1.0, [&engine, &order] {
    order.push_back(50);
    for (int i = 51; i < 60; ++i) {
      engine.schedule_at(1.0, [&order, i] { order.push_back(i); });
    }
  });
  engine.run();
  ASSERT_EQ(order.size(), 60u);
  for (int i = 0; i < 60; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EngineHeap, PropertyRandomSchedulesAreTimeOrderedAndFifoWithinTies) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const auto plan = random_plan(seed, 200);
    Engine engine;
    std::vector<int> order;
    std::vector<double> fire_times;
    // arrival[id] = how many schedule_at calls preceded this event's own
    // (i.e. its insertion sequence), recorded for top-level events at
    // setup and for spawned events inside their parent's callback.
    std::vector<int> arrival(2048, -1);
    int arrivals = 0;

    for (const auto& item : plan.items) {
      arrival[static_cast<std::size_t>(item.id)] = arrivals++;
      engine.schedule_at(item.time, [&, &item = item] {
        order.push_back(item.id);
        fire_times.push_back(engine.now());
        for (const auto& child : item.children) {
          arrival[static_cast<std::size_t>(child.id)] = arrivals++;
          engine.schedule_at(engine.now() + child.delay, [&, &child = child] {
            order.push_back(child.id);
            fire_times.push_back(engine.now());
          });
        }
      });
    }
    engine.run();
    ASSERT_EQ(order.size(), static_cast<std::size_t>(arrivals));

    // Times never go backwards; within a tie, insertion order holds.
    for (std::size_t i = 1; i < order.size(); ++i) {
      EXPECT_LE(fire_times[i - 1], fire_times[i]) << "seed " << seed;
      if (fire_times[i - 1] == fire_times[i]) {
        EXPECT_LT(arrival[static_cast<std::size_t>(order[i - 1])],
                  arrival[static_cast<std::size_t>(order[i])])
            << "tie broken out of insertion order at pos " << i << ", seed " << seed;
      }
    }
  }
}

TEST(EngineHeap, DifferentialAgainstOldPriorityQueueSemantics) {
  // Replay identical randomized schedules (with nested scheduling)
  // through the reference model and the arena engine: the dispatch
  // sequences must match event for event.
  for (std::uint64_t seed = 100; seed < 130; ++seed) {
    const auto plan = random_plan(seed, 300);
    ReferenceEngine reference;
    Engine engine;
    const auto expected = dispatch_sequence(plan, reference);
    const auto actual = dispatch_sequence(plan, engine);
    ASSERT_EQ(expected, actual) << "dispatch order diverged for seed " << seed;
    EXPECT_EQ(reference.now(), engine.now());
  }
}

TEST(EngineHeap, ArenaRecyclesSlotsAcrossSelfRescheduling) {
  // A self-rescheduling chain keeps at most 2 events pending; the arena
  // must stay at its high-water mark instead of growing per event.
  Engine engine;
  int remaining = 10000;
  std::function<void()> hop;  // test-side closure; the engine stores InlineCallbacks
  hop = [&] {
    if (--remaining > 0) engine.schedule_after(1e-6, [&] { hop(); });
  };
  engine.schedule_after(0.0, [&] { hop(); });
  const std::size_t processed = engine.run();
  EXPECT_EQ(processed, 10000u);
  EXPECT_LE(engine.arena_slots(), 4u);
  EXPECT_EQ(engine.events_dispatched(), 10000u);
}

// ---------------------------------------------------------------------------
// Zero-allocation steady state (via the obs counter, not trust)
// ---------------------------------------------------------------------------

TEST(EngineHeap, SteadyStateEngineLoopNeverSpillsToHeap) {
  obs::Counter& heap_allocs = obs::counter(obs::keys::kEngineCallbackHeapAllocs);
  const std::uint64_t before = heap_allocs.value();
  Engine engine;
  struct Payload {
    double a[6];  // ~ the Message-sized captures the simulator uses
  };
  int fired = 0;
  for (int i = 0; i < 1000; ++i) {
    Payload p{};
    p.a[0] = static_cast<double>(i);
    engine.schedule_at(static_cast<double>(i % 7), [p, &fired] {
      fired += static_cast<int>(p.a[0] >= 0.0);
    });
  }
  engine.run();
  EXPECT_EQ(fired, 1000);
  EXPECT_EQ(heap_allocs.value(), before) << "an engine callback spilled to the heap";
}

TEST(EngineHeap, SimulatedPingPongRunsWithZeroCallbackHeapAllocs) {
  obs::Counter& heap_allocs = obs::counter(obs::keys::kEngineCallbackHeapAllocs);
  const std::uint64_t before = heap_allocs.value();

  simmpi::World world(make_noiseless(4), 2, 42);
  constexpr int kRounds = 200;
  world.launch_on(0, [](simmpi::Comm& c) -> Task<void> {
    for (int i = 0; i < kRounds; ++i) {
      co_await c.send(1, 0, 8);
      (void)co_await c.recv(1, 1);
    }
  });
  world.launch_on(1, [](simmpi::Comm& c) -> Task<void> {
    for (int i = 0; i < kRounds; ++i) {
      (void)co_await c.recv(0, 0);
      co_await c.send(0, 1, 8);
    }
  });
  world.run();
  EXPECT_EQ(world.messages_delivered(), 2u * kRounds);
  EXPECT_EQ(heap_allocs.value(), before)
      << "the simmpi p2p path scheduled an oversize callback";
}

}  // namespace
}  // namespace sci::sim
