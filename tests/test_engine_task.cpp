#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/engine.hpp"
#include "sim/task.hpp"

namespace sci::sim {
namespace {

TEST(Engine, RunsEventsInTimeOrder) {
  Engine engine;
  std::vector<int> order;
  engine.schedule_at(3.0, [&] { order.push_back(3); });
  engine.schedule_at(1.0, [&] { order.push_back(1); });
  engine.schedule_at(2.0, [&] { order.push_back(2); });
  EXPECT_EQ(engine.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(engine.now(), 3.0);
}

TEST(Engine, EqualTimesFireInInsertionOrder) {
  Engine engine;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) engine.schedule_at(1.0, [&, i] { order.push_back(i); });
  engine.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Engine, EventsCanScheduleEvents) {
  Engine engine;
  int fired = 0;
  engine.schedule_at(1.0, [&] {
    ++fired;
    engine.schedule_after(1.0, [&] { ++fired; });
  });
  EXPECT_EQ(engine.run(), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(engine.now(), 2.0);
}

TEST(Engine, SchedulingInThePastThrows) {
  Engine engine;
  engine.schedule_at(5.0, [] {});
  engine.run();
  EXPECT_THROW(engine.schedule_at(1.0, [] {}), std::logic_error);
}

TEST(Engine, StopHaltsProcessing) {
  Engine engine;
  int fired = 0;
  engine.schedule_at(1.0, [&] {
    ++fired;
    engine.stop();
  });
  engine.schedule_at(2.0, [&] { ++fired; });
  engine.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(engine.pending(), 1u);
}

TEST(Engine, StoppedEngineRunsAgain) {
  Engine engine;
  int fired = 0;
  engine.schedule_at(1.0, [&] {
    ++fired;
    engine.stop();
  });
  engine.schedule_at(2.0, [&] { ++fired; });
  engine.run();
  ASSERT_EQ(fired, 1);
  // stop() only ends the run it interrupts: the next run() proceeds.
  EXPECT_EQ(engine.run(), 1u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(engine.now(), 2.0);
}

TEST(Engine, StopDuringRunUntilDoesNotJumpToDeadline) {
  Engine engine;
  engine.schedule_at(1.0, [&] { engine.stop(); });
  engine.schedule_at(2.0, [] {});
  engine.run_until(100.0);
  // A stop() mid-run must leave the clock at the stopping event, not
  // teleport it to the deadline (that would strand the queued event in
  // the past).
  EXPECT_EQ(engine.now(), 1.0);
  EXPECT_EQ(engine.pending(), 1u);
  engine.run();
  EXPECT_EQ(engine.now(), 2.0);
}

TEST(Engine, StoppedRunUntilResumesToDeadline) {
  Engine engine;
  engine.schedule_at(1.0, [&] { engine.stop(); });
  engine.run_until(5.0);
  ASSERT_EQ(engine.now(), 1.0);
  // With the stop consumed and the queue drained, the next bounded run
  // advances to its deadline as usual.
  engine.run_until(5.0);
  EXPECT_EQ(engine.now(), 5.0);
}

TEST(Engine, TracksQueueHighWaterAndDispatchCount) {
  Engine engine;
  for (int i = 0; i < 4; ++i) engine.schedule_at(1.0 + i, [] {});
  EXPECT_EQ(engine.queue_high_water(), 4u);
  engine.run();
  EXPECT_EQ(engine.events_dispatched(), 4u);
  EXPECT_EQ(engine.queue_high_water(), 4u);
}

TEST(Engine, RunUntilLeavesLaterEventsQueued) {
  Engine engine;
  int fired = 0;
  engine.schedule_at(1.0, [&] { ++fired; });
  engine.schedule_at(10.0, [&] { ++fired; });
  engine.run_until(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(engine.now(), 5.0);
  engine.run();
  EXPECT_EQ(fired, 2);
}

Task<void> delayed_increment(Engine& engine, int& counter, double delay) {
  co_await Delay{engine, delay};
  ++counter;
}

TEST(Task, DelayAwaitableAdvancesTime) {
  Engine engine;
  int counter = 0;
  auto task = delayed_increment(engine, counter, 2.5);
  task.start();
  EXPECT_EQ(counter, 0);
  engine.run();
  EXPECT_EQ(counter, 1);
  EXPECT_EQ(engine.now(), 2.5);
  EXPECT_TRUE(task.done());
}

Task<int> answer(Engine& engine) {
  co_await Delay{engine, 1.0};
  co_return 42;
}

Task<void> outer(Engine& engine, int& result) {
  result = co_await answer(engine);
  co_await Delay{engine, 1.0};
  result += 1;
}

TEST(Task, NestedTasksReturnValues) {
  Engine engine;
  int result = 0;
  auto task = outer(engine, result);
  task.start();
  engine.run();
  EXPECT_EQ(result, 43);
  EXPECT_EQ(engine.now(), 2.0);
}

Task<void> wait_until(Engine& engine, double when, std::vector<double>& log) {
  co_await Until{engine, when};
  log.push_back(engine.now());
}

TEST(Task, UntilAwaitable) {
  Engine engine;
  std::vector<double> log;
  auto t1 = wait_until(engine, 5.0, log);
  auto t2 = wait_until(engine, 3.0, log);
  t1.start();
  t2.start();
  engine.run();
  EXPECT_EQ(log, (std::vector<double>{3.0, 5.0}));
}

TEST(Task, UntilInPastResumesImmediately) {
  Engine engine;
  engine.schedule_at(10.0, [] {});
  engine.run();
  std::vector<double> log;
  auto t = wait_until(engine, 5.0, log);  // already past
  t.start();
  engine.run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0], 10.0);
}

Task<int> chain(Engine& engine, int depth) {
  if (depth == 0) {
    co_await Delay{engine, 0.1};
    co_return 0;
  }
  const int below = co_await chain(engine, depth - 1);
  co_return below + 1;
}

TEST(Task, DeepNestingViaSymmetricTransfer) {
  Engine engine;
  int result = -1;
  auto driver = [](Engine& eng, int& out) -> Task<void> {
    out = co_await chain(eng, 50);
  }(engine, result);
  driver.start();
  engine.run();
  EXPECT_EQ(result, 50);
}

TEST(Task, MoveSemantics) {
  Engine engine;
  int counter = 0;
  auto task = delayed_increment(engine, counter, 1.0);
  Task<void> moved = std::move(task);
  moved.start();
  engine.run();
  EXPECT_EQ(counter, 1);
}

}  // namespace
}  // namespace sci::sim
