// sci::exec: campaign grid compilation, seed derivation, the
// CampaignRunner determinism contract (results and CSV exports are
// byte-identical for any worker count), the result cache, backends, and
// campaign CSV ingestion.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

#include "core/registry.hpp"
#include "exec/host_backend.hpp"
#include "exec/ingest.hpp"
#include "exec/runner.hpp"
#include "exec/sim_backend.hpp"
#include "exec/threaded_backend.hpp"
#include "obs/trace.hpp"

namespace sci::exec {
namespace {

// ---------------------------------------------------------------- grid

TEST(Campaign, DecodesRowMajorGrid) {
  CampaignSpec spec;
  spec.name = "grid";
  spec.factors.push_back({"a", {"x", "y"}});
  spec.factors.push_back({"b", {"1", "2", "3"}});
  Campaign campaign(spec);

  EXPECT_EQ(campaign.config_count(), 6u);
  EXPECT_EQ(campaign.cell_count(), 6u);

  // First factor slowest-varying.
  const Config c0 = campaign.config(0);
  EXPECT_EQ(c0.level("a"), "x");
  EXPECT_EQ(c0.level("b"), "1");
  const Config c2 = campaign.config(2);
  EXPECT_EQ(c2.level("a"), "x");
  EXPECT_EQ(c2.level("b"), "3");
  const Config c5 = campaign.config(5);
  EXPECT_EQ(c5.level("a"), "y");
  EXPECT_EQ(c5.level("b"), "3");
  EXPECT_EQ(c5.level_indices, (std::vector<std::size_t>{1, 2}));
  EXPECT_EQ(c5.to_string(), "a=y b=3");
  EXPECT_EQ(c5.level_int("b"), 3);

  EXPECT_EQ(c0.find_level("missing"), nullptr);
  EXPECT_THROW((void)c0.level("missing"), std::out_of_range);
  EXPECT_THROW((void)c0.level_double("a"), std::invalid_argument);
  EXPECT_THROW((void)campaign.config(6), std::out_of_range);
}

TEST(Campaign, ValidatesSpec) {
  CampaignSpec spec;
  spec.name = "";
  EXPECT_THROW(Campaign{spec}, std::invalid_argument);
  spec.name = "ok";
  spec.replications = 0;
  EXPECT_THROW(Campaign{spec}, std::invalid_argument);
  spec.replications = 1;
  spec.factors.push_back({"f", {}});
  EXPECT_THROW(Campaign{spec}, std::invalid_argument);
  spec.factors = {{"f", {"1"}}, {"f", {"2"}}};
  EXPECT_THROW(Campaign{spec}, std::invalid_argument);
  spec.factors = {{"f", {"1"}}};
  spec.base.add_factor("sneaky", {"1"});  // factors only via the grid
  EXPECT_THROW(Campaign{spec}, std::invalid_argument);
}

TEST(Campaign, CompilesExperimentFromGrid) {
  CampaignSpec spec;
  spec.name = "doc";
  spec.description = "documentation test";
  spec.base.set("hw", "simulated");
  spec.factors.push_back({"system", {"dora", "pilatus"}});
  spec.replications = 3;
  spec.seed = 77;
  Campaign campaign(spec);

  SimBackend backend(SimBackendOptions{});
  const core::Experiment e = campaign.experiment(&backend);
  ASSERT_EQ(e.factors.size(), 1u);
  EXPECT_EQ(e.factors[0].name, "system");
  EXPECT_EQ(e.factors[0].levels, (std::vector<std::string>{"dora", "pilatus"}));
  EXPECT_EQ(e.environment.at("hw"), "simulated");
  EXPECT_EQ(e.environment.at("campaign.replications"), "3");
  EXPECT_EQ(e.environment.at("campaign.seed"), "77");
  EXPECT_NE(e.environment.at("campaign.seed_derivation").find("splitmix64"),
            std::string::npos);
  EXPECT_NE(e.environment.at("campaign.backend").find("simulated"), std::string::npos);
  EXPECT_TRUE(e.audit().empty()) << e.audit().front();
}

// ---------------------------------------------------------------- seeds

TEST(SeedDerivation, DeterministicAndWellSpread) {
  EXPECT_EQ(derive_seed(1, 2, 3), derive_seed(1, 2, 3));
  std::set<std::uint64_t> seen;
  for (std::uint64_t campaign = 0; campaign < 4; ++campaign) {
    for (std::uint64_t config = 0; config < 8; ++config) {
      for (std::uint64_t rep = 0; rep < 4; ++rep) {
        seen.insert(derive_seed(campaign, config, rep));
      }
    }
  }
  EXPECT_EQ(seen.size(), 4u * 8u * 4u);  // no collisions on a small grid
}

TEST(SeedDerivation, OverrideReplacesScheme) {
  CampaignSpec spec;
  spec.name = "seeded";
  spec.factors.push_back({"processes", {"1", "2"}});
  spec.seed_override = [](const Config& c, std::size_t rep) {
    return 900ULL + static_cast<std::uint64_t>(c.level_int("processes")) + rep;
  };
  Campaign campaign(spec);
  EXPECT_EQ(campaign.seed_for(campaign.config(0), 0), 901u);
  EXPECT_EQ(campaign.seed_for(campaign.config(1), 0), 902u);
}

// ------------------------------------------------------------- backends

/// Deterministic synthetic backend: samples derived from (config, seed)
/// only, with an execution counter for cache tests.
class CountingBackend : public Backend {
 public:
  std::string name() const override { return "counting"; }
  CellResult run(const Config& config, std::uint64_t seed) override {
    calls.fetch_add(1, std::memory_order_relaxed);
    CellResult r;
    r.unit = "u";
    std::uint64_t state = seed;
    for (std::size_t i = 0; i < 16; ++i) {
      r.samples.push_back(static_cast<double>(rng::splitmix64_next(state) >> 40) +
                          static_cast<double>(config.index));
    }
    return r;
  }
  std::atomic<std::size_t> calls{0};
};

class ThrowingBackend : public Backend {
 public:
  std::string name() const override { return "throwing"; }
  CellResult run(const Config& config, std::uint64_t) override {
    if (config.level("k") == "bad") throw std::runtime_error("boom");
    CellResult r;
    r.samples = {1.0, 2.0, 3.0};
    return r;
  }
};

Campaign small_sim_campaign() {
  CampaignSpec spec;
  spec.name = "latency_grid";
  spec.base.set("placement", "two ranks, distinct nodes");
  spec.base.synchronization_method = "none (pingpong)";
  spec.factors.push_back({"system", {"dora", "pilatus", "daint", "bgq"}});
  spec.factors.push_back({"message_bytes", {"64", "512", "4096", "16384"}});
  spec.replications = 2;
  spec.seed = 42;
  return Campaign(spec);
}

SimBackend small_sim_backend() {
  SimBackendOptions opts;
  opts.kernel = SimKernel::kPingPong;
  opts.samples = 48;
  opts.warmup = 4;
  opts.scale = 1e6;
  opts.unit = "us";
  return SimBackend(opts);
}

CampaignRunnerOptions with_workers(std::size_t workers, bool use_cache = true) {
  CampaignRunnerOptions opts;
  opts.workers = workers;
  opts.use_cache = use_cache;
  return opts;
}

// -------------------------------------------------- determinism contract

std::string csv_of(const core::Dataset& ds) {
  std::ostringstream os;
  ds.write_csv(os);
  return os.str();
}

TEST(CampaignRunner, ByteDeterministicAcrossWorkerCounts) {
  std::string reference_samples;
  std::string reference_summary;
  for (const std::size_t workers : {1u, 4u, 8u}) {
    SimBackend backend = small_sim_backend();
    CampaignRunnerOptions opts;
    opts.workers = workers;
    CampaignRunner runner(backend, small_sim_campaign(), opts);
    const CampaignResult result = runner.run();
    EXPECT_EQ(result.failed, 0u);
    EXPECT_EQ(result.cells.size(), 32u);
    EXPECT_EQ(result.executed + result.cache_hits, 32u);

    const std::string samples_csv = csv_of(result.samples_dataset());
    const std::string summary_csv = csv_of(result.summary_dataset());
    if (reference_samples.empty()) {
      reference_samples = samples_csv;
      reference_summary = summary_csv;
      EXPECT_NE(samples_csv.find("f_system"), std::string::npos);
    } else {
      // The contract: bodies AND headers identical, byte for byte.
      EXPECT_EQ(samples_csv, reference_samples) << "workers=" << workers;
      EXPECT_EQ(summary_csv, reference_summary) << "workers=" << workers;
    }
  }
}

TEST(CampaignRunner, ReplicationsGetDistinctSeedsAndCellsLineUp) {
  SimBackend backend = small_sim_backend();
  CampaignRunner runner(backend, small_sim_campaign(), with_workers(2));
  const CampaignResult result = runner.run();
  ASSERT_EQ(result.replications, 2u);
  ASSERT_EQ(result.config_count(), 16u);
  for (std::size_t c = 0; c < result.config_count(); ++c) {
    const auto& r0 = result.cell(c, 0);
    const auto& r1 = result.cell(c, 1);
    EXPECT_EQ(r0.config.index, c);
    EXPECT_EQ(r1.config.index, c);
    EXPECT_EQ(r0.rep, 0u);
    EXPECT_EQ(r1.rep, 1u);
    EXPECT_NE(r0.seed, r1.seed);
    EXPECT_NE(r0.result.samples, r1.result.samples);
    EXPECT_EQ(result.merged_series(c).size(),
              r0.result.samples.size() + r1.result.samples.size());
  }
  // Summaries are plain Rule 5/6 summaries of the cell series.
  const auto s = result.summary(3, 1);
  EXPECT_EQ(s.n, result.series(3, 1).size());
}

// ---------------------------------------------------------------- cache

TEST(CampaignRunner, SecondRunIsServedEntirelyFromCache) {
  CountingBackend backend;
  CampaignSpec spec;
  spec.name = "cached";
  spec.factors.push_back({"k", {"a", "b", "c"}});
  spec.replications = 2;
  CampaignRunner runner(backend, Campaign(spec), with_workers(3));

  const CampaignResult first = runner.run();
  EXPECT_EQ(backend.calls.load(), 6u);
  EXPECT_EQ(first.executed, 6u);
  EXPECT_EQ(first.cache_hits, 0u);
  EXPECT_EQ(runner.cache_size(), 6u);

  const CampaignResult second = runner.run();
  EXPECT_EQ(backend.calls.load(), 6u) << "second run must execute zero backend calls";
  EXPECT_EQ(second.executed, 0u);
  EXPECT_EQ(second.cache_hits, 6u);
  for (std::size_t i = 0; i < first.cells.size(); ++i) {
    EXPECT_TRUE(second.cells[i].result.from_cache);
    EXPECT_EQ(second.cells[i].result.samples, first.cells[i].result.samples);
  }
  EXPECT_EQ(csv_of(second.samples_dataset()), csv_of(first.samples_dataset()));

  runner.clear_cache();
  EXPECT_EQ(runner.cache_size(), 0u);
  (void)runner.run();
  EXPECT_EQ(backend.calls.load(), 12u);
}

TEST(CampaignRunner, CacheCanBeDisabled) {
  CountingBackend backend;
  CampaignSpec spec;
  spec.name = "uncached";
  spec.factors.push_back({"k", {"a", "b"}});
  CampaignRunner runner(backend, Campaign(spec), with_workers(1, false));
  (void)runner.run();
  (void)runner.run();
  EXPECT_EQ(backend.calls.load(), 4u);
  EXPECT_EQ(runner.cache_size(), 0u);
}

// --------------------------------------------------------------- errors

TEST(CampaignRunner, BackendFailuresAreCapturedPerCell) {
  ThrowingBackend backend;
  CampaignSpec spec;
  spec.name = "partial";
  spec.factors.push_back({"k", {"good", "bad"}});
  CampaignRunner runner(backend, Campaign(spec), with_workers(2));
  const CampaignResult result = runner.run();
  EXPECT_EQ(result.failed, 1u);
  EXPECT_EQ(result.executed, 1u);
  EXPECT_EQ(result.cell(1).result.error, "boom");
  EXPECT_NO_THROW((void)result.series(0));
  EXPECT_THROW((void)result.series(1), std::runtime_error);
  // Failed cells are not cached: a re-run retries them.
  const CampaignResult again = runner.run();
  EXPECT_EQ(again.cache_hits, 1u);
  EXPECT_EQ(again.failed, 1u);
}

// ------------------------------------------------------------- backends

TEST(HostBackendTest, RunsAdaptiveSamplingPerBenchmark) {
  std::vector<HostBenchmark> benchmarks;
  core::AdaptiveOptions sampling;
  sampling.min_samples = 10;
  sampling.max_samples = 20;
  benchmarks.push_back({"fixed7", [] { return 7.0; }, "ns", sampling});
  HostBackend backend(std::move(benchmarks));

  CampaignSpec spec;
  spec.name = "host";
  spec.factors.push_back({HostBackend::kBenchmarkFactor, backend.benchmark_names()});
  CampaignRunner runner(backend, Campaign(spec), with_workers(1));
  const CampaignResult result = runner.run();
  ASSERT_EQ(result.cells.size(), 1u);
  const auto& r = result.cell(0).result;
  EXPECT_GE(r.samples.size(), 10u);
  EXPECT_EQ(r.samples.front(), 7.0);
  EXPECT_FALSE(r.stop_reason.empty());

  Config unknown;
  unknown.levels = {{HostBackend::kBenchmarkFactor, "nope"}};
  EXPECT_THROW((void)backend.run(unknown, 0), std::out_of_range);
  EXPECT_THROW(HostBackend(std::vector<HostBenchmark>{}), std::invalid_argument);
}

TEST(SimBackendTest, KernelsArePureFunctionsOfConfigAndSeed) {
  for (const SimKernel kernel :
       {SimKernel::kPingPong, SimKernel::kReduce, SimKernel::kPiScaling}) {
    SimBackendOptions opts;
    opts.kernel = kernel;
    opts.samples = 16;
    opts.iterations = 8;
    opts.repetitions = 4;
    opts.machine = "dora";  // has noise models: samples depend on the seed
    opts.ranks = 4;
    SimBackend backend(opts);
    Config config;
    const auto a = backend.run(config, 123);
    const auto b = backend.run(config, 123);
    const auto c = backend.run(config, 124);
    EXPECT_EQ(a.samples, b.samples) << to_string(kernel);
    EXPECT_FALSE(a.samples.empty()) << to_string(kernel);
    if (kernel != SimKernel::kPiScaling) {
      EXPECT_NE(a.samples, c.samples) << to_string(kernel);
    }
  }
}

TEST(ThreadedBackendTest, MeasuresRealTeamAndHonorsThreadsFactor) {
  ThreadedBackendOptions opts;
  std::atomic<std::size_t> touched{0};
  opts.kernel = [&](std::size_t) { touched.fetch_add(1, std::memory_order_relaxed); };
  opts.measure.threads = 2;
  opts.measure.iterations = 4;
  opts.measure.warmup = 1;
  opts.measure.window_s = 50e-6;
  ThreadedBackend backend(opts);

  Config config;
  config.levels = {{"threads", "2"}};
  const auto r = backend.run(config, 0);
  EXPECT_EQ(r.samples.size(), 4u);        // max across threads per iteration
  EXPECT_EQ(touched.load(), 2u * (4 + 1));  // every thread ran warmup + iters
  for (double v : r.samples) EXPECT_GT(v, 0.0);
}

// ------------------------------------------------------------ ingestion

TEST(Ingest, RoundTripsCampaignExport) {
  SimBackend backend = small_sim_backend();
  CampaignSpec spec;
  spec.name = "ingest";
  spec.factors.push_back({"system", {"dora", "pilatus"}});
  spec.replications = 2;
  CampaignRunner runner(backend, Campaign(spec), with_workers(2));
  const CampaignResult result = runner.run();

  const std::string path = ::testing::TempDir() + "/exec_ingest.csv";
  result.samples_dataset().save_csv(path);
  const Ingested loaded = load_measurements(path);
  std::remove(path.c_str());

  EXPECT_TRUE(loaded.campaign);
  ASSERT_EQ(loaded.cells.size(), 4u);
  for (std::size_t c = 0; c < 2; ++c) {
    for (std::size_t r = 0; r < 2; ++r) {
      const auto& cell = loaded.cells[c * 2 + r];
      EXPECT_EQ(cell.config, c);
      EXPECT_EQ(cell.rep, r);
      EXPECT_EQ(cell.values, result.series(c, r));
      EXPECT_NE(cell.label.find("f_system"), std::string::npos);
    }
  }
}

TEST(Ingest, PlainCsvIsNotACampaign) {
  const std::string path = ::testing::TempDir() + "/exec_plain.csv";
  {
    std::ofstream os(path);
    os << "a,b\n1,2\n3,4\n";
  }
  const Ingested loaded = load_measurements(path);
  std::remove(path.c_str());
  EXPECT_FALSE(loaded.campaign);
  EXPECT_TRUE(loaded.cells.empty());
  EXPECT_EQ(loaded.dataset.rows(), 2u);
}

// ---------------------------------------------------------------- traces

#if SCIBENCH_TRACING
TEST(CampaignRunner, WorkersEmitOnTheirOwnTraceTracks) {
  obs::TraceSink sink;
  obs::ScopedAttach attach(sink);
  CountingBackend backend;
  CampaignSpec spec;
  spec.name = "traced";
  spec.factors.push_back({"k", {"a", "b", "c", "d"}});
  CampaignRunner runner(backend, Campaign(spec), with_workers(2));
  (void)runner.run();

  // Every worker that ran cells labeled its own harness track inside
  // its block; cell spans appear in the merged trace.
  const auto& names = sink.track_names();
  bool worker_track = false;
  for (const auto& [tid, name] : names) {
    if (tid >= kWorkerTrackBase && name.rfind("campaign worker", 0) == 0) {
      worker_track = true;
    }
  }
  EXPECT_TRUE(worker_track);
  const std::string json = sink.to_json(obs::TraceSink::WriteOptions{false});
  EXPECT_NE(json.find("campaign.cell"), std::string::npos);
}
#endif  // SCIBENCH_TRACING

}  // namespace
}  // namespace sci::exec
