// ProgressSink / metrics-snapshot telemetry: the observational contract
// (snapshots agree with the exported CSV ground truth) and the
// determinism contract (attaching a sink changes zero exported bytes).
#include <cstdio>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exec/ingest.hpp"
#include "exec/progress.hpp"
#include "exec/runner.hpp"
#include "exec/sim_backend.hpp"

namespace sci::exec {
namespace {

std::string temp_path(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

std::string csv_of(const CampaignResult& result) {
  std::ostringstream os;
  result.samples_dataset().write_csv(os);
  return os.str();
}

SimBackend small_sim_backend(std::size_t samples = 24) {
  SimBackendOptions opts;
  opts.kernel = SimKernel::kPingPong;
  opts.samples = samples;
  opts.warmup = 2;
  opts.scale = 1e6;
  opts.unit = "us";
  return SimBackend(opts);
}

Campaign small_campaign(std::uint64_t seed = 42) {
  CampaignSpec spec;
  spec.name = "progress_grid";
  spec.base.synchronization_method = "none (pingpong)";
  spec.factors.push_back({"system", {"dora", "pilatus"}});
  spec.factors.push_back({"message_bytes", {"64", "1024", "4096"}});
  spec.replications = 2;
  spec.seed = seed;
  return Campaign(spec);
}

/// Records every callback; thread-safe because heartbeats arrive from
/// the monitor thread.
class CollectingSink : public ProgressSink {
 public:
  void on_heartbeat(const ProgressSnapshot& snapshot) override {
    const std::lock_guard<std::mutex> lock(mu_);
    heartbeats_.push_back(snapshot);
  }
  void on_complete(const ProgressSnapshot& snapshot) override {
    const std::lock_guard<std::mutex> lock(mu_);
    finals_.push_back(snapshot);
  }
  [[nodiscard]] std::vector<ProgressSnapshot> heartbeats() {
    const std::lock_guard<std::mutex> lock(mu_);
    return heartbeats_;
  }
  [[nodiscard]] std::vector<ProgressSnapshot> finals() {
    const std::lock_guard<std::mutex> lock(mu_);
    return finals_;
  }

 private:
  std::mutex mu_;
  std::vector<ProgressSnapshot> heartbeats_;
  std::vector<ProgressSnapshot> finals_;
};

// ------------------------------------------- snapshot vs ground truth

TEST(Progress, FinalSnapshotMatchesIngestedCsvAtEveryWorkerCount) {
  for (const std::size_t workers : {1u, 4u, 8u}) {
    SimBackend backend = small_sim_backend();
    const Campaign campaign = small_campaign();
    CollectingSink sink;
    CampaignRunnerOptions options;
    options.workers = workers;
    options.use_cache = false;
    options.progress = &sink;
    CampaignRunner runner(backend, campaign, options);
    const CampaignResult result = runner.run();

    ASSERT_EQ(sink.finals().size(), 1u) << workers << " workers";
    const ProgressSnapshot snapshot = sink.finals()[0];
    EXPECT_TRUE(snapshot.finished);
    EXPECT_EQ(snapshot.campaign, "progress_grid");
    EXPECT_EQ(snapshot.total_cells, campaign.cell_count());
    EXPECT_EQ(snapshot.completed, campaign.cell_count());
    EXPECT_EQ(snapshot.executed, result.executed);
    EXPECT_EQ(snapshot.failed, 0u);
    EXPECT_EQ(snapshot.interrupted, 0u);
    ASSERT_EQ(snapshot.workers.size(), workers);

    // Worker attribution must cover exactly the resolved cells.
    std::size_t worker_cells = 0;
    for (const auto& w : snapshot.workers) worker_cells += w.cells;
    EXPECT_EQ(worker_cells, snapshot.completed);

    // Ground truth: the exported CSV. Row count == samples_total, and
    // the regrouped cell count == completed cells.
    const std::string csv_path = temp_path("progress_" + std::to_string(workers) + ".csv");
    result.samples_dataset().save_csv(csv_path);
    const Ingested ingested = load_measurements(csv_path);
    EXPECT_EQ(snapshot.samples_total, ingested.dataset.rows());
    EXPECT_EQ(snapshot.samples_executed, ingested.dataset.rows());
    EXPECT_EQ(snapshot.completed, ingested.cells.size());
    EXPECT_EQ(ingested.failed, 0u);
  }
}

TEST(Progress, CsvBytesIdenticalWithAndWithoutSink) {
  const std::string baseline = [&] {
    SimBackend backend = small_sim_backend();
    CampaignRunnerOptions options;
    options.workers = 4;
    options.use_cache = false;
    CampaignRunner runner(backend, small_campaign(), options);
    return csv_of(runner.run());
  }();

  SimBackend backend = small_sim_backend();
  CollectingSink sink;
  CampaignRunnerOptions options;
  options.workers = 4;
  options.use_cache = false;
  options.progress = &sink;
  options.heartbeat_period_s = 0.001;  // hammer the monitor thread too
  options.metrics_path = temp_path("progress_det.json");
  CampaignRunner runner(backend, small_campaign(), options);
  const std::string with_sink = csv_of(runner.run());

  EXPECT_EQ(with_sink, baseline);
}

TEST(Progress, MetricsFileIsParseableAndFinished) {
  const std::string metrics_path = temp_path("progress_metrics.json");
  SimBackend backend = small_sim_backend();
  CampaignRunnerOptions options;
  options.workers = 2;
  options.use_cache = false;
  options.metrics_path = metrics_path;  // no sink: file alone turns telemetry on
  CampaignRunner runner(backend, small_campaign(), options);
  const CampaignResult result = runner.run();

  std::ifstream in(metrics_path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const ProgressSnapshot snapshot = parse_progress_snapshot(buffer.str());
  EXPECT_TRUE(snapshot.finished);
  EXPECT_EQ(snapshot.completed, result.cells.size());
  EXPECT_EQ(snapshot.executed, result.executed);
  EXPECT_EQ(snapshot.backend, backend.name());
  // Round trip: the snapshot file is canonical JSON.
  EXPECT_EQ(snapshot.to_json(), buffer.str());
}

TEST(Progress, HeartbeatsAreMonotoneAndBounded) {
  SimBackend backend = small_sim_backend(400);  // enough work to tick a few times
  CollectingSink sink;
  CampaignRunnerOptions options;
  options.workers = 2;
  options.use_cache = false;
  options.progress = &sink;
  options.heartbeat_period_s = 0.001;
  CampaignRunner runner(backend, small_campaign(), options);
  const CampaignResult result = runner.run();
  (void)result;

  std::size_t previous = 0;
  for (const auto& beat : sink.heartbeats()) {
    EXPECT_FALSE(beat.finished);
    EXPECT_LE(beat.completed, beat.total_cells);
    EXPECT_GE(beat.completed, previous);
    previous = beat.completed;
    // samples_total is final-only bookkeeping.
    EXPECT_EQ(beat.samples_total, 0u);
  }
  ASSERT_EQ(sink.finals().size(), 1u);
  EXPECT_GE(sink.finals()[0].completed, previous);
}

// ------------------------------------------- interruption and resume

TEST(Progress, InterruptedSnapshotAccountsBudgetAndResumeFinishes) {
  const std::string journal = temp_path("progress_journal.jsonl");
  const std::string metrics1 = temp_path("progress_phase1.json");
  const std::string metrics2 = temp_path("progress_phase2.json");

  std::size_t phase1_executed = 0;
  {
    SimBackend backend = small_sim_backend();
    CollectingSink sink;
    CampaignRunnerOptions options;
    options.workers = 1;
    options.use_cache = false;
    options.journal_path = journal;
    options.cell_budget = 5;
    options.progress = &sink;
    options.metrics_path = metrics1;
    CampaignRunner runner(backend, small_campaign(), options);
    const CampaignResult result = runner.run();
    ASSERT_GT(result.interrupted, 0u);
    phase1_executed = result.executed;

    ASSERT_EQ(sink.finals().size(), 1u);
    const ProgressSnapshot snapshot = sink.finals()[0];
    EXPECT_TRUE(snapshot.finished);  // the run() call finished, interrupted or not
    EXPECT_EQ(snapshot.interrupted, result.interrupted);
    EXPECT_EQ(snapshot.executed, 5u);
    // "completed" counts cells resolved by any means -- interrupted
    // cells included (they are resolved for this run; resume executes
    // them).
    EXPECT_EQ(snapshot.completed, snapshot.total_cells);
    EXPECT_EQ(snapshot.executed + snapshot.interrupted, snapshot.total_cells);
  }

  // Resume: journal hits replay phase 1's cells without executing them.
  SimBackend backend = small_sim_backend();
  CollectingSink sink;
  CampaignRunnerOptions options;
  options.workers = 1;
  options.use_cache = false;
  options.journal_path = journal;
  options.progress = &sink;
  options.metrics_path = metrics2;
  CampaignRunner runner(backend, small_campaign(), options);
  const CampaignResult result = runner.run();
  EXPECT_EQ(result.interrupted, 0u);

  ASSERT_EQ(sink.finals().size(), 1u);
  const ProgressSnapshot snapshot = sink.finals()[0];
  EXPECT_EQ(snapshot.journal_hits, phase1_executed);
  EXPECT_EQ(snapshot.completed, snapshot.total_cells);
  EXPECT_EQ(snapshot.executed + snapshot.journal_hits, snapshot.total_cells);
  // The ingested CSV still agrees with the snapshot after a resume.
  const std::string csv_path = temp_path("progress_resumed.csv");
  result.samples_dataset().save_csv(csv_path);
  const Ingested ingested = load_measurements(csv_path);
  EXPECT_EQ(snapshot.samples_total, ingested.dataset.rows());
  EXPECT_EQ(snapshot.completed, ingested.cells.size());
}

// ------------------------------------------------- snapshot json

TEST(Progress, SnapshotJsonRoundTrips) {
  ProgressSnapshot snapshot;
  snapshot.campaign = "c";
  snapshot.backend = "b";
  snapshot.total_cells = 12;
  snapshot.completed = 12;
  snapshot.executed = 10;
  snapshot.retries = 1;
  snapshot.cache_hits = 2;
  snapshot.samples_executed = 240;
  snapshot.samples_total = 288;
  snapshot.elapsed_s = 1.5;
  snapshot.finished = true;
  snapshot.workers.push_back({7, 0.75});
  snapshot.workers.push_back({5, 0.7});
  snapshot.counter_delta.emplace_back("engine.events", 123456);

  const std::string json_text = snapshot.to_json();
  const ProgressSnapshot back = parse_progress_snapshot(json_text);
  EXPECT_EQ(back.to_json(), json_text);
  EXPECT_EQ(back.completed, 12u);
  ASSERT_EQ(back.workers.size(), 2u);
  EXPECT_EQ(back.workers[0].cells, 7u);
  ASSERT_EQ(back.counter_delta.size(), 1u);
  EXPECT_EQ(back.counter_delta[0].second, 123456u);
}

}  // namespace
}  // namespace sci::exec
