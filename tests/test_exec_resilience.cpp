// Resilient campaign execution: failure containment (throwing run() and
// make_context()), bounded deterministic retry, the collision-safe
// result-cache key, the crash-safe campaign journal with kill/resume
// byte-differentials (workers x faults), and failed-cell accounting end
// to end through CSV export and ingestion.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "exec/ingest.hpp"
#include "exec/journal.hpp"
#include "exec/runner.hpp"
#include "exec/sim_backend.hpp"

namespace sci::exec {
namespace {

std::string csv_of(const core::Dataset& ds) {
  std::ostringstream os;
  ds.write_csv(os);
  return os.str();
}

std::string temp_path(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

SimBackend small_sim_backend() {
  SimBackendOptions opts;
  opts.kernel = SimKernel::kPingPong;
  opts.samples = 24;
  opts.warmup = 2;
  opts.scale = 1e6;
  opts.unit = "us";
  return SimBackend(opts);
}

Campaign small_campaign(std::vector<std::string> systems, std::uint64_t seed = 42) {
  CampaignSpec spec;
  spec.name = "resilience_grid";
  spec.base.synchronization_method = "none (pingpong)";
  spec.factors.push_back({"system", std::move(systems)});
  spec.factors.push_back({"message_bytes", {"64", "1024", "4096"}});
  spec.replications = 2;
  spec.seed = seed;
  return Campaign(spec);
}

// ------------------------------------------- failure containment

class ThrowingContextBackend : public Backend {
 public:
  class Context : public BackendContext {
   public:
    CellResult run(const Config&, std::uint64_t) override {
      CellResult r;
      r.samples = {1.0};
      return r;
    }
  };
  std::string name() const override { return "throwing-context"; }
  CellResult run(const Config&, std::uint64_t) override {
    CellResult r;
    r.samples = {1.0};
    return r;
  }
  std::unique_ptr<BackendContext> make_context() override {
    throw std::runtime_error("context exploded");
  }
};

TEST(Resilience, ThrowingMakeContextFailsCellsNotTheProcess) {
  // Regression: make_context() ran outside any try block on the worker
  // thread, so this exception escaped into std::thread and terminated
  // the whole process.
  ThrowingContextBackend backend;
  for (std::size_t workers : {1u, 4u}) {
    CampaignRunnerOptions opts;
    opts.workers = workers;
    CampaignRunner runner(backend, small_campaign({"dora"}), opts);
    const CampaignResult result = runner.run();
    EXPECT_EQ(result.failed, result.cells.size()) << "workers=" << workers;
    EXPECT_EQ(result.executed, 0u);
    for (const auto& cell : result.cells) {
      EXPECT_NE(cell.result.error.find("make_context failed"), std::string::npos)
          << cell.result.error;
      EXPECT_NE(cell.result.error.find("context exploded"), std::string::npos);
    }
    // The damage is accounted in the Rule 9 header.
    EXPECT_EQ(result.experiment.environment.at("campaign.failed"),
              std::to_string(result.cells.size()));
  }
}

class ThrowingRunBackend : public Backend {
 public:
  std::string name() const override { return "throwing-run"; }
  CellResult run(const Config& config, std::uint64_t) override {
    if (config.level("system") == "bad") throw std::runtime_error("boom");
    CellResult r;
    r.unit = "u";
    r.samples = {1.0, 2.0};
    return r;
  }
};

// ------------------------------------------------ bounded retry

/// Deterministically flaky: fails whenever the seed it is handed is
/// odd. The runner's retry ladder derives attempt seeds from the cell
/// seed, so whether a cell eventually succeeds is a pure function of
/// the cell -- identical across worker counts.
class FlakyBackend : public Backend {
 public:
  std::string name() const override { return "flaky"; }
  CellResult run(const Config& config, std::uint64_t seed) override {
    if (seed % 2 == 1) throw std::runtime_error("transient fault");
    CellResult r;
    r.unit = "u";
    std::uint64_t state = seed;
    for (int i = 0; i < 8; ++i) {
      r.samples.push_back(static_cast<double>(rng::splitmix64_next(state) >> 40) +
                          static_cast<double>(config.index));
    }
    return r;
  }
};

TEST(Resilience, RetriesUseDerivedSeedsAndStayDeterministic) {
  std::string reference;
  for (std::size_t workers : {1u, 4u}) {
    FlakyBackend backend;
    CampaignRunnerOptions opts;
    opts.workers = workers;
    opts.max_attempts = 12;  // P(12 odd draws) ~ 2^-12 per cell; seed 42 clears it
    CampaignRunner runner(backend, small_campaign({"a", "b"}), opts);
    const CampaignResult result = runner.run();
    EXPECT_EQ(result.failed, 0u) << "workers=" << workers;
    EXPECT_GT(result.retries, 0u);
    for (const auto& cell : result.cells) EXPECT_GE(cell.result.attempts, 1u);

    const std::string csv = csv_of(result.samples_dataset());
    if (reference.empty()) {
      reference = csv;
    } else {
      EXPECT_EQ(csv, reference) << "workers=" << workers;
    }
  }
}

TEST(Resilience, RetryBoundIsRespected) {
  class AlwaysThrow : public Backend {
   public:
    std::string name() const override { return "always-throw"; }
    CellResult run(const Config&, std::uint64_t) override {
      calls.fetch_add(1, std::memory_order_relaxed);
      throw std::runtime_error("permanent fault");
    }
    std::atomic<std::size_t> calls{0};
  };
  AlwaysThrow backend;
  CampaignSpec spec;
  spec.name = "bounded";
  spec.factors.push_back({"k", {"x"}});
  CampaignRunnerOptions opts;
  opts.workers = 1;
  opts.max_attempts = 3;
  CampaignRunner runner(backend, Campaign(spec), opts);
  const CampaignResult result = runner.run();
  EXPECT_EQ(backend.calls.load(), 3u);
  EXPECT_EQ(result.failed, 1u);
  EXPECT_EQ(result.retries, 2u);
  EXPECT_EQ(result.cells[0].result.attempts, 3u);
  EXPECT_EQ(result.cells[0].result.error, "permanent fault");
}

// ------------------------------------------- collision-safe cache

TEST(Resilience, CellCacheSurvivesHashCollisions) {
  // Regression: the cache was keyed on the raw 64-bit hash alone, so a
  // collision between two distinct cells returned the wrong cell's
  // samples. CellKey keeps the hash for bucketing but compares the full
  // identity.
  CellKey a;
  a.backend = "b";
  a.levels = {{"k", "1"}};
  a.seed = 7;
  a.hash = 0xdeadbeef;
  CellKey b = a;
  b.levels = {{"k", "2"}};  // different cell, same (forced) hash
  ASSERT_FALSE(a == b);

  CellCache cache;
  CellResult ra, rb;
  ra.samples = {1.0};
  rb.samples = {2.0};
  cache.emplace(a, ra);
  cache.emplace(b, rb);
  ASSERT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.find(a)->second.samples, (std::vector<double>{1.0}));
  EXPECT_EQ(cache.find(b)->second.samples, (std::vector<double>{2.0}));

  // Seed and backend are part of the identity too.
  CellKey c = a;
  c.seed = 8;
  EXPECT_EQ(cache.find(c), cache.end());
  CellKey d = a;
  d.backend = "other";
  EXPECT_EQ(cache.find(d), cache.end());
}

TEST(Resilience, MakeCellKeyEncodesBackendLevelsAndSeed) {
  Config config;
  config.levels = {{"k", "1"}};
  const CellKey base = make_cell_key("b", config, 7);
  EXPECT_EQ(base.backend, "b");
  EXPECT_EQ(base.levels, config.levels);
  EXPECT_EQ(base.seed, 7u);
  EXPECT_NE(base.hash, make_cell_key("b", config, 8).hash);
  EXPECT_NE(base.hash, make_cell_key("c", config, 7).hash);
}

// ------------------------------------------------------- journal

TEST(Journal, RoundTripsResultsByteExactly) {
  const std::string path = temp_path("journal_roundtrip.log");
  CellResult r;
  r.samples = {1.0 / 3.0, -0.0, 5e-324, 1.7976931348623157e308, 42.0};
  r.unit = "us";
  r.stop_reason = "fixed";
  r.warmup_discarded = 3;
  r.attempts = 2;
  {
    CampaignJournal journal(path, 0x1234);
    journal.append(5, 1, 0xabcdef, r);
    EXPECT_EQ(journal.size(), 1u);
  }
  CampaignJournal reopened(path, 0x1234);
  EXPECT_EQ(reopened.size(), 1u);
  const CellResult* rec = reopened.find(5, 1, 0xabcdef);
  ASSERT_NE(rec, nullptr);
  // Bit-for-bit identical doubles (memcmp, not ==: -0.0 == 0.0).
  ASSERT_EQ(rec->samples.size(), r.samples.size());
  EXPECT_EQ(std::memcmp(rec->samples.data(), r.samples.data(),
                        r.samples.size() * sizeof(double)),
            0);
  EXPECT_EQ(rec->unit, "us");
  EXPECT_EQ(rec->stop_reason, "fixed");
  EXPECT_EQ(rec->warmup_discarded, 3u);
  EXPECT_EQ(rec->attempts, 2u);
  EXPECT_EQ(reopened.find(5, 1, 0xabcde), nullptr);  // wrong seed: ignored
  EXPECT_EQ(reopened.find(5, 0, 0xabcdef), nullptr);
}

TEST(Journal, RecordsErrorsAndTextWithSpaces) {
  const std::string path = temp_path("journal_errors.log");
  CellResult r;
  r.error = "boom: worker 3 lost\nits marbles";
  r.stop_reason = "";
  {
    CampaignJournal journal(path, 9);
    journal.append(0, 0, 1, r);
  }
  CampaignJournal reopened(path, 9);
  const CellResult* rec = reopened.find(0, 0, 1);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->error, r.error);
  EXPECT_EQ(rec->stop_reason, "");
}

TEST(Journal, ToleratesTornTail) {
  const std::string path = temp_path("journal_torn.log");
  CellResult r;
  r.samples = {1.5, 2.5};
  {
    CampaignJournal journal(path, 77);
    journal.append(0, 0, 10, r);
    journal.append(1, 0, 11, r);
  }
  // Simulate a crash mid-append: a record missing its trailing "ok".
  {
    std::ofstream out(path, std::ios::app);
    out << "cell 2 0 000000000000000c 1 0 - - - 2 3ff8000000";
  }
  CampaignJournal reopened(path, 77);
  EXPECT_EQ(reopened.size(), 2u);
  EXPECT_NE(reopened.find(0, 0, 10), nullptr);
  EXPECT_NE(reopened.find(1, 0, 11), nullptr);
  EXPECT_EQ(reopened.find(2, 0, 12), nullptr);
  // The journal stays appendable after dropping the torn tail.
  reopened.append(2, 0, 12, r);
  CampaignJournal again(path, 77);
  EXPECT_EQ(again.find(2, 0, 12)->samples, r.samples);
}

TEST(Journal, RefusesForeignFiles) {
  const std::string path = temp_path("journal_foreign.log");
  {
    CampaignJournal journal(path, 1);
    CellResult r;
    journal.append(0, 0, 0, r);
  }
  EXPECT_THROW(CampaignJournal(path, 2), std::runtime_error);

  const std::string junk = temp_path("journal_junk.log");
  {
    std::ofstream out(junk);
    out << "config,rep,value\n0,0,1.5\n";
  }
  EXPECT_THROW(CampaignJournal(junk, 1), std::runtime_error);
}

TEST(Journal, FingerprintSeparatesCampaignsAndBackends) {
  const Campaign a = small_campaign({"dora"}, 1);
  const Campaign b = small_campaign({"dora"}, 2);
  EXPECT_NE(CampaignJournal::fingerprint(a, "x"), CampaignJournal::fingerprint(b, "x"));
  EXPECT_NE(CampaignJournal::fingerprint(a, "x"), CampaignJournal::fingerprint(a, "y"));
  EXPECT_EQ(CampaignJournal::fingerprint(a, "x"),
            CampaignJournal::fingerprint(small_campaign({"dora"}, 1), "x"));
}

// ------------------------------------------------- kill / resume

/// The tentpole differential: run a campaign to completion; run the
/// same campaign interrupted after `budget` executed cells (journal
/// on), then resume it in a fresh runner (fresh in-memory cache, as a
/// new process would have). The resumed CSVs must be byte-identical to
/// the uninterrupted run -- for every worker count, with faults off and
/// on.
TEST(Resume, InterruptedCampaignResumesByteIdentically) {
  for (const std::string system : {"dora", "dora+chaos"}) {
    SimBackend baseline_backend = small_sim_backend();
    CampaignRunnerOptions baseline_opts;
    baseline_opts.workers = 2;
    CampaignRunner baseline(baseline_backend, small_campaign({system}), baseline_opts);
    const CampaignResult full = baseline.run();
    ASSERT_EQ(full.failed, 0u);
    const std::string want_samples = csv_of(full.samples_dataset());
    const std::string want_summary = csv_of(full.summary_dataset());

    for (std::size_t workers : {1u, 4u, 8u}) {
      const std::string journal_path =
          temp_path("resume_" + std::to_string(workers) + "_" +
                    (system == "dora" ? "clean" : "chaos") + ".journal");

      // Phase 1: "killed" after 3 executed cells.
      {
        SimBackend backend = small_sim_backend();
        CampaignRunnerOptions opts;
        opts.workers = workers;
        opts.journal_path = journal_path;
        opts.cell_budget = 3;
        CampaignRunner runner(backend, small_campaign({system}), opts);
        const CampaignResult partial = runner.run();
        EXPECT_EQ(partial.executed, 3u);
        EXPECT_GT(partial.interrupted, 0u);
        EXPECT_EQ(partial.executed + partial.interrupted + partial.cache_hits,
                  partial.cells.size());
        EXPECT_EQ(partial.experiment.environment.count("campaign.interrupted"), 1u);
      }

      // Phase 2: resume in a fresh runner (no in-memory cache carried
      // over). Journaled cells replay; only the interrupted ones run.
      {
        SimBackend backend = small_sim_backend();
        CampaignRunnerOptions opts;
        opts.workers = workers;
        opts.journal_path = journal_path;
        CampaignRunner runner(backend, small_campaign({system}), opts);
        const CampaignResult resumed = runner.run();
        EXPECT_EQ(resumed.journal_hits, 3u) << "workers=" << workers;
        EXPECT_EQ(resumed.executed + resumed.journal_hits + resumed.cache_hits,
                  resumed.cells.size());
        EXPECT_EQ(resumed.failed, 0u);
        EXPECT_EQ(resumed.interrupted, 0u);
        EXPECT_EQ(resumed.experiment.environment.count("campaign.interrupted"), 0u);
        EXPECT_EQ(csv_of(resumed.samples_dataset()), want_samples)
            << "workers=" << workers << " system=" << system;
        EXPECT_EQ(csv_of(resumed.summary_dataset()), want_summary)
            << "workers=" << workers << " system=" << system;
      }
      std::remove(journal_path.c_str());
    }
  }
}

TEST(Resume, CompletedJournalReplaysEverything) {
  const std::string journal_path = temp_path("resume_complete.journal");
  const std::string want = [&] {
    SimBackend backend = small_sim_backend();
    CampaignRunnerOptions opts;
    opts.workers = 2;
    opts.journal_path = journal_path;
    CampaignRunner runner(backend, small_campaign({"dora"}), opts);
    return csv_of(runner.run().samples_dataset());
  }();
  SimBackend backend = small_sim_backend();
  CampaignRunnerOptions opts;
  opts.workers = 2;
  opts.journal_path = journal_path;
  CampaignRunner runner(backend, small_campaign({"dora"}), opts);
  const CampaignResult replayed = runner.run();
  EXPECT_EQ(replayed.executed, 0u);
  EXPECT_EQ(replayed.journal_hits, replayed.cells.size());
  EXPECT_EQ(csv_of(replayed.samples_dataset()), want);
  std::remove(journal_path.c_str());
}

TEST(Resume, JournalFromDifferentCampaignIsRejected) {
  const std::string journal_path = temp_path("resume_mismatch.journal");
  {
    SimBackend backend = small_sim_backend();
    CampaignRunnerOptions opts;
    opts.workers = 1;
    opts.journal_path = journal_path;
    CampaignRunner runner(backend, small_campaign({"dora"}, 1), opts);
    (void)runner.run();
  }
  SimBackend backend = small_sim_backend();
  CampaignRunnerOptions opts;
  opts.workers = 1;
  opts.journal_path = journal_path;
  CampaignRunner runner(backend, small_campaign({"dora"}, 2), opts);
  EXPECT_THROW((void)runner.run(), std::runtime_error);
  std::remove(journal_path.c_str());
}

TEST(Resume, FailedCellsAreJournaledAsFinal) {
  // Deterministic failures are outcomes, not work to redo: a resume
  // must not retry them (same seed -> same throw), and the resumed
  // accounting must match the uninterrupted run.
  const std::string journal_path = temp_path("resume_failed.journal");
  CampaignSpec spec;
  spec.name = "partial";
  spec.factors.push_back({"system", {"good", "bad"}});
  spec.replications = 2;
  {
    ThrowingRunBackend backend;
    CampaignRunnerOptions opts;
    opts.workers = 2;
    opts.journal_path = journal_path;
    CampaignRunner runner(backend, Campaign(spec), opts);
    const CampaignResult first = runner.run();
    EXPECT_EQ(first.failed, 2u);
    EXPECT_EQ(first.executed, 2u);
  }
  ThrowingRunBackend backend;
  CampaignRunnerOptions opts;
  opts.workers = 2;
  opts.journal_path = journal_path;
  CampaignRunner runner(backend, Campaign(spec), opts);
  const CampaignResult resumed = runner.run();
  EXPECT_EQ(resumed.executed, 0u);
  EXPECT_EQ(resumed.journal_hits, 4u);
  EXPECT_EQ(resumed.failed, 2u);  // replayed failures still count
  EXPECT_EQ(resumed.experiment.environment.at("campaign.failed"), "2");
  std::remove(journal_path.c_str());
}

// ------------------------------------- failed cells end to end

TEST(FailedCells, AccountedThroughCsvAndIngest) {
  ThrowingRunBackend backend;
  CampaignSpec spec;
  spec.name = "partial";
  spec.base.synchronization_method = "none";
  spec.factors.push_back({"system", {"good", "bad"}});
  spec.replications = 2;
  CampaignRunnerOptions opts;
  opts.workers = 2;
  CampaignRunner runner(backend, Campaign(spec), opts);
  const CampaignResult result = runner.run();
  ASSERT_EQ(result.failed, 2u);

  // The summary keeps one row per cell, failed ones flagged with NaN
  // statistics instead of vanishing.
  const core::Dataset summary = result.summary_dataset();
  ASSERT_EQ(summary.rows(), 4u);
  const auto failed_col = summary.column("failed");
  EXPECT_EQ(failed_col, (std::vector<double>{0.0, 0.0, 1.0, 1.0}));

  // Samples CSV: only successful cells contribute rows, but the header
  // names the missing ones. Round-trip through ingest recovers the
  // accounting.
  const std::string path = temp_path("failed_cells.csv");
  result.samples_dataset().save_csv(path);
  const Ingested ingested = load_measurements(path);
  EXPECT_TRUE(ingested.campaign);
  EXPECT_EQ(ingested.cells.size(), 2u);  // the two good cells
  EXPECT_EQ(ingested.failed, 2u);
  EXPECT_EQ(ingested.interrupted, 0u);
  EXPECT_NE(ingested.failed_cells.find("boom"), std::string::npos)
      << ingested.failed_cells;
  EXPECT_NE(ingested.failed_cells.find("config 1"), std::string::npos);
  std::remove(path.c_str());
}

TEST(FailedCells, AllFailedCampaignStillExportsAndIngests) {
  ThrowingRunBackend backend;
  CampaignSpec spec;
  spec.name = "doomed";
  spec.factors.push_back({"system", {"bad"}});
  spec.replications = 3;
  CampaignRunnerOptions opts;
  opts.workers = 2;
  CampaignRunner runner(backend, Campaign(spec), opts);
  const CampaignResult result = runner.run();
  ASSERT_EQ(result.failed, 3u);

  const std::string path = temp_path("all_failed.csv");
  result.samples_dataset().save_csv(path);  // zero data rows, full header
  const Ingested ingested = load_measurements(path);
  EXPECT_EQ(ingested.dataset.rows(), 0u);
  EXPECT_EQ(ingested.failed, 3u);
  EXPECT_FALSE(ingested.failed_cells.empty());
  std::remove(path.c_str());
}

TEST(FailedCells, CleanCampaignHasNoAccounting) {
  SimBackend backend = small_sim_backend();
  CampaignRunnerOptions opts;
  opts.workers = 2;
  CampaignRunner runner(backend, small_campaign({"dora"}), opts);
  const CampaignResult result = runner.run();
  ASSERT_EQ(result.failed, 0u);
  EXPECT_EQ(result.experiment.environment.count("campaign.failed"), 0u);

  const std::string path = temp_path("clean_cells.csv");
  result.samples_dataset().save_csv(path);
  const Ingested ingested = load_measurements(path);
  EXPECT_EQ(ingested.failed, 0u);
  EXPECT_EQ(ingested.interrupted, 0u);
  EXPECT_TRUE(ingested.failed_cells.empty());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sci::exec
