// PR-4 determinism pins: reusable worlds, per-worker backend contexts,
// and pooled coroutine frames must be invisible in the results. Every
// test here compares full double series (or whole CSVs) for exact
// equality -- "close" is a bug.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "exec/runner.hpp"
#include "exec/sim_backend.hpp"
#include "rng/distributions.hpp"
#include "sim/frame_pool.hpp"
#include "sim/machine.hpp"
#include "sim/task.hpp"
#include "simmpi/benchmarks.hpp"
#include "simmpi/collectives.hpp"
#include "simmpi/comm.hpp"

namespace sci::exec {
namespace {

/// Restores the calling thread's pool flag on scope exit so a failing
/// test cannot poison the suite.
class ScopedPooling {
 public:
  explicit ScopedPooling(bool on) : was_(sim::FramePool::local().enabled()) {
    sim::FramePool::local().set_enabled(on);
  }
  ~ScopedPooling() { sim::FramePool::local().set_enabled(was_); }

 private:
  bool was_;
};

// ------------------------------------------------- World::reset pins

std::vector<double> probe_world(simmpi::World& world) {
  std::vector<double> out;
  world.launch([&out](simmpi::Comm& comm) -> sim::Task<void> {
    for (int i = 0; i < 3; ++i) {
      co_await simmpi::barrier(comm);
      out.push_back(comm.wtime());
      const double noise = rng::uniform01(comm.rng());
      co_await comm.compute(1e-6 * (1.0 + noise));
    }
  });
  world.run();
  return out;
}

TEST(WorldReset, MatchesFreshConstructionSeedForSeed) {
  const sim::Machine machine = sim::make_dora();
  simmpi::World fresh(machine, 6, 42);
  const std::vector<double> reference = probe_world(fresh);
  ASSERT_FALSE(reference.empty());

  simmpi::World reused(machine, 6, 7);  // different seed on purpose
  (void)probe_world(reused);            // dirty every buffer
  reused.reset(42);
  EXPECT_EQ(probe_world(reused), reference);

  // And again: reset is idempotent, not single-shot.
  reused.reset(42);
  EXPECT_EQ(probe_world(reused), reference);
}

TEST(WorldReset, PreservesTheAllocationPolicy) {
  const sim::Machine machine = sim::make_pilatus();
  simmpi::World fresh(machine, 5, 11, sim::AllocationPolicy::kPacked);
  simmpi::World reused(machine, 5, 3, sim::AllocationPolicy::kPacked);
  reused.reset(11);
  EXPECT_EQ(reused.allocation(), fresh.allocation());
}

TEST(WorldReset, ReusableBenchesMatchTheFreeFunctions) {
  const sim::Machine machine = sim::make_dora();

  simmpi::PingPongBench pingpong(machine, 64, 8);
  (void)pingpong.run(32, 1);  // dirty the world
  EXPECT_EQ(pingpong.run(32, 99), simmpi::pingpong_latency(machine, 32, 64, 99, 8));

  simmpi::ReduceBench red(machine, 6);
  (void)red.run(10, 1);
  const simmpi::ReduceBenchResult& reused = red.run(10, 99);
  const simmpi::ReduceBenchResult fresh = simmpi::reduce_bench(machine, 6, 10, 99);
  EXPECT_EQ(reused.times, fresh.times);
  std::vector<double> maxima;
  reused.max_across_ranks_into(maxima);
  EXPECT_EQ(maxima, fresh.max_across_ranks());

  simmpi::PiScalingBench pi(machine, 4, 1e-3, 0.05);
  (void)pi.run(3, 1);
  EXPECT_EQ(pi.run(3, 99), simmpi::pi_scaling_run(machine, 4, 1e-3, 0.05, 3, 99));
}

// ---------------------------------------------- SimBackend + contexts

SimBackendOptions small_options(SimKernel kernel) {
  SimBackendOptions options;
  options.kernel = kernel;
  options.machine = "dora";
  options.samples = 40;
  options.warmup = 4;
  options.iterations = 12;
  options.repetitions = 6;
  options.base_seconds = 1e-3;
  options.ranks = 4;
  return options;
}

TEST(SimBackendReuse, PooledAndUnpooledRunsAreByteIdentical) {
  for (SimKernel kernel :
       {SimKernel::kPingPong, SimKernel::kReduce, SimKernel::kPiScaling}) {
    SimBackend backend(small_options(kernel));
    const Config config;  // no factors: options provide everything
    CellResult pooled, unpooled;
    {
      ScopedPooling on(true);
      pooled = backend.run(config, 1234);
    }
    {
      ScopedPooling off(false);
      unpooled = backend.run(config, 1234);
    }
    EXPECT_EQ(pooled.samples, unpooled.samples) << to_string(kernel);
    EXPECT_FALSE(pooled.samples.empty()) << to_string(kernel);
  }
}

TEST(SimBackendReuse, ContextMatchesStatelessRunAcrossRepeatedCalls) {
  for (SimKernel kernel :
       {SimKernel::kPingPong, SimKernel::kReduce, SimKernel::kPiScaling}) {
    SimBackend backend(small_options(kernel));
    auto context = backend.make_context();
    ASSERT_NE(context, nullptr);
    const Config config;
    // Repeat seeds: call 2 of each exercises the warmed, reset world.
    for (std::uint64_t seed : {7ull, 7ull, 99ull, 7ull}) {
      const CellResult stateless = backend.run(config, seed);
      const CellResult reused = context->run(config, seed);
      EXPECT_EQ(reused.samples, stateless.samples)
          << to_string(kernel) << " seed " << seed;
      EXPECT_EQ(reused.warmup_discarded, stateless.warmup_discarded);
      EXPECT_EQ(reused.unit, stateless.unit);
      EXPECT_EQ(reused.stop_reason, stateless.stop_reason);
    }
  }
}

TEST(SimBackendReuse, ContextHandlesMixedShapes) {
  SimBackendOptions options = small_options(SimKernel::kReduce);
  SimBackend backend(options);
  auto context = backend.make_context();

  CampaignSpec spec;
  spec.name = "shapes";
  spec.factors.push_back({"system", {"dora", "noiseless"}});
  spec.factors.push_back({"processes", {"2", "5"}});
  Campaign campaign(spec);
  // Interleave shapes so the context must switch worlds between calls.
  for (std::size_t pass = 0; pass < 2; ++pass) {
    for (std::size_t c = 0; c < campaign.config_count(); ++c) {
      const Config config = campaign.config(c);
      const std::uint64_t seed = campaign.seed_for(config, pass);
      EXPECT_EQ(context->run(config, seed).samples, backend.run(config, seed).samples)
          << config.to_string();
    }
  }
}

TEST(SimBackendReuse, WarmupDiscardedIsConsistentPerKernel) {
  const Config config;
  {
    SimBackend backend(small_options(SimKernel::kPingPong));
    EXPECT_EQ(backend.run(config, 1).warmup_discarded, 4u);
  }
  // Reduce and pi-scaling report every timed iteration: zero discarded.
  {
    SimBackend backend(small_options(SimKernel::kReduce));
    EXPECT_EQ(backend.run(config, 1).warmup_discarded, 0u);
  }
  {
    SimBackend backend(small_options(SimKernel::kPiScaling));
    EXPECT_EQ(backend.run(config, 1).warmup_discarded, 0u);
  }
}

// ------------------------------------------------ campaign-level pins

std::string samples_csv(const CampaignResult& result) {
  std::ostringstream os;
  result.samples_dataset().write_csv(os);
  return os.str();
}

Campaign pingpong_campaign() {
  CampaignSpec spec;
  spec.name = "reuse-pins";
  spec.factors.push_back({"system", {"dora", "pilatus"}});
  spec.factors.push_back({"message_bytes", {"8", "4096"}});
  spec.replications = 3;
  spec.seed = 2026;
  return Campaign(spec);
}

TEST(CampaignReuse, CsvBytesEqualAcrossWorkerCountsAndContextModes) {
  SimBackend backend(small_options(SimKernel::kPingPong));

  CampaignRunnerOptions baseline_options;
  baseline_options.workers = 1;
  baseline_options.reuse_contexts = false;
  CampaignRunner baseline(backend, pingpong_campaign(), baseline_options);
  const std::string reference = samples_csv(baseline.run());
  ASSERT_FALSE(reference.empty());

  for (std::size_t workers : {1u, 2u, 4u, 8u}) {
    CampaignRunnerOptions options;
    options.workers = workers;
    options.reuse_contexts = true;
    CampaignRunner runner(backend, pingpong_campaign(), options);
    EXPECT_EQ(samples_csv(runner.run()), reference) << workers << " workers";
  }
}

TEST(CampaignReuse, AllocationAuditSettlesToZeroInSteadyState) {
#if !SCIBENCH_POOLING
  GTEST_SKIP() << "built with SCIBENCH_POOLING=OFF";
#endif
  ScopedPooling on(true);
  SimBackend backend(small_options(SimKernel::kPingPong));

  CampaignSpec spec;
  spec.name = "audit";
  spec.replications = 5;  // single config, five replications
  Campaign campaign(spec);

  CampaignRunnerOptions options;
  options.workers = 1;  // in-thread: replications run in rep order
  options.use_cache = false;
  CampaignRunner runner(backend, campaign, options);
  const CampaignResult result = runner.run();
  ASSERT_EQ(result.cells.size(), 5u);

  // First replication may warm the pool and the world; from the second
  // replication onward the audit must read zero.
  for (std::size_t rep = 1; rep < result.cells.size(); ++rep) {
    EXPECT_EQ(result.cells[rep].result.coro_frame_heap_allocs, 0u) << "rep " << rep;
    EXPECT_EQ(result.cells[rep].result.callback_heap_spills, 0u) << "rep " << rep;
  }
}

}  // namespace
}  // namespace sci::exec
