// Round-structured sequential stopping in the campaign runner: the
// fixed-policy byte differential (StoppingPolicy::fixed(n) must be
// indistinguishable from the legacy fixed-replication path), byte
// determinism of sequential campaigns across worker counts, early
// retirement + deterministic budget reallocation, kill/resume mid-round
// through the v2 journal, and the per-config stop accounting end to end
// (CampaignResult -> CSV header -> ingest).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "exec/ingest.hpp"
#include "exec/journal.hpp"
#include "exec/runner.hpp"
#include "exec/sim_backend.hpp"
#include "rng/xoshiro.hpp"

namespace sci::exec {
namespace {

std::string csv_of(const core::Dataset& ds) {
  std::ostringstream os;
  ds.write_csv(os);
  return os.str();
}

std::string temp_path(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

/// Deterministic synthetic backend with per-config noise scales: each
/// cell's samples are a pure function of (config, seed), centered on
/// 100 with a uniform spread set by the "noise" factor level. Quiet
/// configs converge after a few replications; the loud one cannot reach
/// a tight CI within any reasonable cap, forcing max_reps.
class NoiseLadderBackend : public Backend {
 public:
  std::string name() const override { return "noise-ladder"; }
  CellResult run(const Config& config, std::uint64_t seed) override {
    const std::string& level = config.level("noise");
    const double scale = level == "loud" ? 50.0 : level == "mid" ? 0.4 : 0.1;
    CellResult r;
    r.unit = "u";
    std::uint64_t state = seed;
    for (int i = 0; i < 16; ++i) {
      const double u =
          static_cast<double>(rng::splitmix64_next(state) >> 11) * 0x1.0p-53;
      r.samples.push_back(100.0 + scale * (u - 0.5));
    }
    return r;
  }
};

Campaign ladder_campaign(StoppingPolicy stopping) {
  CampaignSpec spec;
  spec.name = "ladder";
  spec.factors.push_back({"noise", {"quiet", "mid", "loud"}});
  spec.seed = 2718;
  spec.stopping = stopping;
  return Campaign(spec);
}

StoppingPolicy ladder_policy() {
  StoppingPolicy p = StoppingPolicy::sequential_ci(0.02, 3, 12);
  return p;
}

SimBackend small_sim_backend() {
  SimBackendOptions opts;
  opts.kernel = SimKernel::kPingPong;
  opts.samples = 24;
  opts.warmup = 2;
  opts.scale = 1e6;
  opts.unit = "us";
  return SimBackend(opts);
}

Campaign sim_campaign(StoppingPolicy stopping = {}) {
  CampaignSpec spec;
  spec.name = "seq_grid";
  spec.base.synchronization_method = "none (pingpong)";
  spec.factors.push_back({"system", {"dora", "pilatus"}});
  spec.factors.push_back({"message_bytes", {"64", "4096"}});
  spec.replications = 2;
  spec.seed = 11;
  spec.stopping = stopping;
  return Campaign(spec);
}

// --------------------------------------- fixed-policy differential

TEST(SequentialStopping, FixedPolicyIsByteIdenticalToDefaultPath) {
  // StoppingPolicy::fixed(n) must reproduce the legacy fixed-replication
  // runner byte for byte: same cells, same CSVs, same experiment
  // header, at every worker count.
  std::string want_samples;
  std::string want_summary;
  {
    SimBackend backend = small_sim_backend();
    CampaignRunnerOptions opts;
    opts.workers = 2;
    CampaignRunner runner(backend, sim_campaign(), opts);
    const CampaignResult result = runner.run();
    want_samples = csv_of(result.samples_dataset());
    want_summary = csv_of(result.summary_dataset());
  }
  for (std::size_t workers : {1u, 4u, 8u}) {
    SimBackend backend = small_sim_backend();
    CampaignRunnerOptions opts;
    opts.workers = workers;
    CampaignRunner runner(backend, sim_campaign(StoppingPolicy::fixed(2)), opts);
    const CampaignResult result = runner.run();
    EXPECT_FALSE(result.sequential);
    EXPECT_EQ(result.replications, 2u);
    EXPECT_EQ(result.rounds, 1u);
    EXPECT_EQ(csv_of(result.samples_dataset()), want_samples) << "workers=" << workers;
    EXPECT_EQ(csv_of(result.summary_dataset()), want_summary) << "workers=" << workers;
    // Fixed-mode headers carry no sequential annotations.
    EXPECT_EQ(result.experiment.environment.count("campaign.stopping"), 0u);
    EXPECT_EQ(result.experiment.environment.count("campaign.rep_counts"), 0u);
  }
}

TEST(SequentialStopping, FixedPolicyWithCountOverridesSpecReplications) {
  SimBackend backend = small_sim_backend();
  CampaignRunnerOptions opts;
  opts.workers = 1;
  CampaignRunner runner(backend, sim_campaign(StoppingPolicy::fixed(3)), opts);
  const CampaignResult result = runner.run();
  EXPECT_EQ(result.replications, 3u);
  EXPECT_EQ(result.cells.size(), result.config_count() * 3u);
}

// ------------------------------------------- sequential execution

TEST(SequentialStopping, RetiresQuietConfigsEarlyAndCapsLoudOnes) {
  NoiseLadderBackend backend;
  CampaignRunnerOptions opts;
  opts.workers = 2;
  CampaignRunner runner(backend, ladder_campaign(ladder_policy()), opts);
  const CampaignResult result = runner.run();

  ASSERT_EQ(result.config_count(), 3u);
  ASSERT_EQ(result.stopping.size(), 3u);
  EXPECT_TRUE(result.sequential);
  EXPECT_EQ(result.replications, 0u);
  EXPECT_GT(result.rounds, 1u);

  // Quiet and mid configs converge well before the cap...
  for (std::size_t c : {0u, 1u}) {
    EXPECT_TRUE(result.stopping[c].converged) << "config " << c;
    EXPECT_EQ(result.stopping[c].stop_reason, "converged");
    EXPECT_LT(result.stopping[c].reps, 12u);
    EXPECT_GE(result.stopping[c].reps, 3u);
    EXPECT_LE(result.stopping[c].rel_ci_half_width, 0.02);
  }
  // ...the loud config cannot, and runs to max_reps.
  EXPECT_FALSE(result.stopping[2].converged);
  EXPECT_EQ(result.stopping[2].stop_reason, "max_reps");
  EXPECT_EQ(result.stopping[2].reps, 12u);
  EXPECT_GT(result.stopping[2].rel_ci_half_width, 0.02);

  // rep_count/cell_offsets agree with the stop accounting, and the
  // campaign spent fewer cells than fixed-at-cap would have.
  std::size_t total = 0;
  for (std::size_t c = 0; c < 3; ++c) {
    EXPECT_EQ(result.rep_count(c), result.stopping[c].reps);
    total += result.stopping[c].reps;
  }
  EXPECT_EQ(result.cells.size(), total);
  EXPECT_LT(total, 3u * 12u);

  // Freed quanta from the retired configs accelerate the loud config:
  // strictly fewer rounds than one-rep-per-round would need.
  EXPECT_LT(result.rounds, 1u + (12u - 3u));

  // Rule 9 header documents the adaptive design.
  EXPECT_EQ(result.experiment.environment.at("campaign.replications"), "adaptive");
  EXPECT_EQ(result.experiment.environment.count("campaign.stopping"), 1u);
  const std::string rep_counts = result.experiment.environment.at("campaign.rep_counts");
  std::string want;
  for (std::size_t c = 0; c < 3; ++c) {
    if (c) want += ',';
    want += std::to_string(result.stopping[c].reps);
  }
  EXPECT_EQ(rep_counts, want);
}

TEST(SequentialStopping, ByteDeterministicAcrossWorkerCounts) {
  std::string reference_samples;
  std::string reference_summary;
  std::vector<std::size_t> reference_reps;
  for (std::size_t workers : {1u, 4u, 8u}) {
    NoiseLadderBackend backend;
    CampaignRunnerOptions opts;
    opts.workers = workers;
    CampaignRunner runner(backend, ladder_campaign(ladder_policy()), opts);
    const CampaignResult result = runner.run();
    std::vector<std::size_t> reps;
    for (const auto& info : result.stopping) reps.push_back(info.reps);
    const std::string samples = csv_of(result.samples_dataset());
    const std::string summary = csv_of(result.summary_dataset());
    if (reference_samples.empty()) {
      reference_samples = samples;
      reference_summary = summary;
      reference_reps = reps;
    } else {
      EXPECT_EQ(samples, reference_samples) << "workers=" << workers;
      EXPECT_EQ(summary, reference_summary) << "workers=" << workers;
      EXPECT_EQ(reps, reference_reps) << "workers=" << workers;
    }
  }
}

TEST(SequentialStopping, TailQuantileStoppingIsByteDeterministicAcrossWorkers) {
  // The ci:WIDTH@p99 study design (latency_study --stopping ci:W@p99):
  // converge the 99th percentile's rank CI instead of the median's.
  // Tail ranks converge slower, so the target is looser; determinism
  // must hold regardless -- stop decisions are functions of pooled
  // sample values only, never of scheduling.
  StoppingPolicy p99 = StoppingPolicy::sequential_ci(0.25, 3, 12);
  p99.quantile = 0.99;
  std::string reference_samples;
  std::string reference_summary;
  std::vector<std::size_t> reference_reps;
  for (std::size_t workers : {1u, 4u}) {
    NoiseLadderBackend backend;
    CampaignRunnerOptions opts;
    opts.workers = workers;
    CampaignRunner runner(backend, ladder_campaign(p99), opts);
    const CampaignResult result = runner.run();
    std::vector<std::size_t> reps;
    for (const auto& info : result.stopping) reps.push_back(info.reps);
    const std::string samples = csv_of(result.samples_dataset());
    const std::string summary = csv_of(result.summary_dataset());
    if (reference_samples.empty()) {
      reference_samples = samples;
      reference_summary = summary;
      reference_reps = reps;
    } else {
      EXPECT_EQ(samples, reference_samples) << "workers=" << workers;
      EXPECT_EQ(summary, reference_summary) << "workers=" << workers;
      EXPECT_EQ(reps, reference_reps) << "workers=" << workers;
    }
  }
  // The tail target is a different stopping rule than the median's:
  // its fingerprint must differ so journals cannot cross-resume.
  EXPECT_NE(CampaignJournal::fingerprint(ladder_campaign(p99), "noise-ladder"),
            CampaignJournal::fingerprint(ladder_campaign(ladder_policy()), "noise-ladder"));
}

TEST(SequentialStopping, MergedSeriesPoolsVariableRepCounts) {
  NoiseLadderBackend backend;
  CampaignRunnerOptions opts;
  opts.workers = 2;
  CampaignRunner runner(backend, ladder_campaign(ladder_policy()), opts);
  const CampaignResult result = runner.run();
  for (std::size_t c = 0; c < result.config_count(); ++c) {
    const std::vector<double> merged = result.merged_series(c);
    EXPECT_EQ(merged.size(), result.rep_count(c) * 16u);
    // First replication leads the pool (rep order).
    EXPECT_EQ(merged.front(), result.series(c, 0).front());
  }
}

// ------------------------------------------------- kill / resume

TEST(SequentialStopping, ResumeMidRoundIsByteIdenticalAtEveryWorkerCount) {
  // Reference: the uninterrupted sequential campaign.
  std::string want_samples;
  std::string want_summary;
  {
    NoiseLadderBackend backend;
    CampaignRunnerOptions opts;
    opts.workers = 2;
    CampaignRunner runner(backend, ladder_campaign(ladder_policy()), opts);
    const CampaignResult full = runner.run();
    ASSERT_EQ(full.failed, 0u);
    want_samples = csv_of(full.samples_dataset());
    want_summary = csv_of(full.summary_dataset());
  }

  for (std::size_t workers : {1u, 4u, 8u}) {
    const std::string journal_path =
        temp_path("seq_resume_" + std::to_string(workers) + ".journal");

    // Phase 1: killed mid-round-0 (round 0 schedules 9 cells; the
    // budget stops after 5). No stop decision may be taken on the
    // incomplete round.
    {
      NoiseLadderBackend backend;
      CampaignRunnerOptions opts;
      opts.workers = workers;
      opts.journal_path = journal_path;
      opts.cell_budget = 5;
      CampaignRunner runner(backend, ladder_campaign(ladder_policy()), opts);
      const CampaignResult partial = runner.run();
      EXPECT_EQ(partial.executed, 5u);
      EXPECT_GT(partial.interrupted, 0u);
      for (const auto& info : partial.stopping) {
        EXPECT_FALSE(info.converged);
        EXPECT_EQ(info.stop_reason, "interrupted");
      }
    }

    // Phase 2: resume in a fresh runner. Journaled cells replay, the
    // round barrier sees the same pooled samples, and every stop
    // decision lands identically -- byte-identical exports.
    {
      NoiseLadderBackend backend;
      CampaignRunnerOptions opts;
      opts.workers = workers;
      opts.journal_path = journal_path;
      CampaignRunner runner(backend, ladder_campaign(ladder_policy()), opts);
      const CampaignResult resumed = runner.run();
      EXPECT_EQ(resumed.journal_hits, 5u) << "workers=" << workers;
      EXPECT_EQ(resumed.interrupted, 0u);
      EXPECT_EQ(csv_of(resumed.samples_dataset()), want_samples)
          << "workers=" << workers;
      EXPECT_EQ(csv_of(resumed.summary_dataset()), want_summary)
          << "workers=" << workers;
    }
    std::remove(journal_path.c_str());
  }
}

TEST(SequentialStopping, ResumeAfterCompletedRoundsReplaysStopDecisions) {
  // Kill after round 0 completed (9 cells) plus part of round 1: the
  // journal then carries stop records for the retired configs, which
  // the resume must verify, not re-decide differently.
  const std::string journal_path = temp_path("seq_resume_rounds.journal");
  std::string want_samples;
  {
    NoiseLadderBackend backend;
    CampaignRunnerOptions opts;
    opts.workers = 2;
    CampaignRunner runner(backend, ladder_campaign(ladder_policy()), opts);
    want_samples = csv_of(runner.run().samples_dataset());
  }
  {
    NoiseLadderBackend backend;
    CampaignRunnerOptions opts;
    opts.workers = 2;
    opts.journal_path = journal_path;
    opts.cell_budget = 10;  // round 0 (9 cells) + 1 cell of round 1
    CampaignRunner runner(backend, ladder_campaign(ladder_policy()), opts);
    const CampaignResult partial = runner.run();
    EXPECT_EQ(partial.executed, 10u);
  }
  {
    NoiseLadderBackend backend;
    CampaignRunnerOptions opts;
    opts.workers = 2;
    opts.journal_path = journal_path;
    CampaignRunner runner(backend, ladder_campaign(ladder_policy()), opts);
    const CampaignResult resumed = runner.run();
    EXPECT_EQ(resumed.journal_hits, 10u);
    EXPECT_EQ(csv_of(resumed.samples_dataset()), want_samples);
  }
  std::remove(journal_path.c_str());
}

TEST(SequentialStopping, TamperedStopRecordIsRejectedOnResume) {
  const std::string journal_path = temp_path("seq_tamper.journal");
  {
    NoiseLadderBackend backend;
    CampaignRunnerOptions opts;
    opts.workers = 1;
    opts.journal_path = journal_path;
    CampaignRunner runner(backend, ladder_campaign(ladder_policy()), opts);
    (void)runner.run();
  }
  // Bump the replication count inside the first stop record: the resume
  // recomputes the decision from the replayed samples and must refuse
  // the contradicting journal instead of silently preferring either.
  std::ifstream in(journal_path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  const std::size_t pos = text.find("\nstop ");
  ASSERT_NE(pos, std::string::npos);
  const std::size_t reps_start = text.find(' ', pos + 6) + 1;
  const std::size_t reps_end = text.find(' ', reps_start);
  const std::size_t reps =
      static_cast<std::size_t>(std::stoul(text.substr(reps_start, reps_end - reps_start)));
  text.replace(reps_start, reps_end - reps_start, std::to_string(reps + 1));
  std::ofstream(journal_path, std::ios::trunc) << text;

  NoiseLadderBackend backend;
  CampaignRunnerOptions opts;
  opts.workers = 1;
  opts.journal_path = journal_path;
  CampaignRunner runner(backend, ladder_campaign(ladder_policy()), opts);
  EXPECT_THROW((void)runner.run(), std::runtime_error);
  std::remove(journal_path.c_str());
}

TEST(SequentialStopping, JournalStopRecordsRoundTrip) {
  const std::string path = temp_path("stop_records.journal");
  {
    CampaignJournal journal(path, 0xfeed);
    journal.append_stop(2, 7, "converged");
    journal.append_stop(0, 12, "max_reps");
  }
  CampaignJournal reopened(path, 0xfeed);
  ASSERT_NE(reopened.find_stop(2), nullptr);
  EXPECT_EQ(reopened.find_stop(2)->reps, 7u);
  EXPECT_EQ(reopened.find_stop(2)->reason, "converged");
  ASSERT_NE(reopened.find_stop(0), nullptr);
  EXPECT_EQ(reopened.find_stop(0)->reps, 12u);
  EXPECT_EQ(reopened.find_stop(0)->reason, "max_reps");
  EXPECT_EQ(reopened.find_stop(1), nullptr);
  std::remove(path.c_str());
}

TEST(SequentialStopping, PolicyChangesJournalFingerprint) {
  // A sequential journal must not resume under a different stopping
  // policy -- the stop decisions it carries would be meaningless.
  const Campaign a = ladder_campaign(ladder_policy());
  StoppingPolicy other = ladder_policy();
  other.target_rel_ci_half_width = 0.01;
  const Campaign b = ladder_campaign(other);
  EXPECT_NE(CampaignJournal::fingerprint(a, "noise-ladder"),
            CampaignJournal::fingerprint(b, "noise-ladder"));
  // Fixed-mode fingerprints ignore the policy entirely, so pre-v2
  // journals of fixed campaigns keep resuming.
  EXPECT_EQ(CampaignJournal::fingerprint(sim_campaign(), "sim"),
            CampaignJournal::fingerprint(sim_campaign(StoppingPolicy::fixed(2)), "sim"));
}

// --------------------------------------------- ESS floor (ROADMAP 2)

/// Backend whose samples are a slow AR(1) walk around 100: the values
/// are tightly clustered (tiny relative rank CI) but heavily
/// autocorrelated, so the pooled effective sample size stays a small
/// fraction of the raw count. Exactly the series the ESS floor exists
/// for -- the CI criterion alone would stop at min_reps on what is
/// effectively a handful of independent observations.
class AutocorrelatedBackend : public Backend {
 public:
  std::string name() const override { return "ar1"; }
  CellResult run(const Config&, std::uint64_t seed) override {
    CellResult r;
    r.unit = "u";
    std::uint64_t state = seed;
    double x = 0.0;
    for (int i = 0; i < 16; ++i) {
      const double u =
          static_cast<double>(rng::splitmix64_next(state) >> 11) * 0x1.0p-53;
      x = 0.95 * x + 0.4 * (u - 0.5);
      r.samples.push_back(100.0 + x);
    }
    return r;
  }
};

Campaign ar1_campaign(StoppingPolicy stopping) {
  CampaignSpec spec;
  spec.name = "ar1_study";
  spec.factors.push_back({"unit", {"only"}});
  spec.seed = 9041;
  spec.stopping = stopping;
  return Campaign(spec);
}

TEST(SequentialStopping, SequentialCiArmsTheEssFloorByDefault) {
  // ROADMAP item 2: the factory used to ship ess_floor = 0.0, leaving
  // the implemented autocorrelation check permanently dead.
  EXPECT_EQ(StoppingPolicy::sequential_ci(0.05).ess_floor,
            StoppingPolicy::kDefaultEssFloor);
  EXPECT_GT(StoppingPolicy::kDefaultEssFloor, 0.0);
  // fixed() and the default-constructed policy stay floor-less, so
  // fixed-mode behavior and fingerprints are untouched.
  EXPECT_EQ(StoppingPolicy::fixed(3).ess_floor, 0.0);
  EXPECT_EQ(StoppingPolicy{}.ess_floor, 0.0);
}

TEST(SequentialStopping, EssFloorBlocksStoppingOnAutocorrelatedSeries) {
  // With the default floor the AR(1) config may NOT retire on its tiny
  // rank CI: its pooled ESS never reaches the floor within max_reps.
  StoppingPolicy armed = StoppingPolicy::sequential_ci(0.02, 3, 8);
  {
    AutocorrelatedBackend backend;
    CampaignRunnerOptions opts;
    opts.workers = 2;
    CampaignRunner runner(backend, ar1_campaign(armed), opts);
    const CampaignResult result = runner.run();
    ASSERT_EQ(result.stopping.size(), 1u);
    EXPECT_FALSE(result.stopping[0].converged);
    EXPECT_EQ(result.stopping[0].stop_reason, "max_reps");
    EXPECT_EQ(result.stopping[0].reps, 8u);
    // The CI criterion alone was satisfied -- the floor is what held.
    EXPECT_LE(result.stopping[0].rel_ci_half_width, 0.02);
    EXPECT_LT(result.stopping[0].ess, StoppingPolicy::kDefaultEssFloor);
  }
  // Explicit opt-out (ess_floor = 0 after the factory call) restores
  // the old CI-only behavior: immediate convergence at min_reps.
  StoppingPolicy disarmed = armed;
  disarmed.ess_floor = 0.0;
  {
    AutocorrelatedBackend backend;
    CampaignRunnerOptions opts;
    opts.workers = 2;
    CampaignRunner runner(backend, ar1_campaign(disarmed), opts);
    const CampaignResult result = runner.run();
    ASSERT_EQ(result.stopping.size(), 1u);
    EXPECT_TRUE(result.stopping[0].converged);
    EXPECT_EQ(result.stopping[0].stop_reason, "converged");
    EXPECT_EQ(result.stopping[0].reps, 3u);
  }
  // The floor is part of the policy identity: journals recorded under
  // one floor must not resume under another.
  EXPECT_NE(CampaignJournal::fingerprint(ar1_campaign(armed), "ar1"),
            CampaignJournal::fingerprint(ar1_campaign(disarmed), "ar1"));
}

TEST(SequentialStopping, EssFloorPassesIndependentSeriesUnchanged) {
  // The ladder backend's cells are iid uniforms: pooled ESS tracks the
  // raw count, so arming the floor must not delay any stop decision --
  // the quiet config still retires at min_reps with the same bytes.
  NoiseLadderBackend backend;
  CampaignRunnerOptions opts;
  opts.workers = 2;
  CampaignRunner runner(backend, ladder_campaign(ladder_policy()), opts);
  const CampaignResult result = runner.run();
  EXPECT_TRUE(result.stopping[0].converged);
  EXPECT_EQ(result.stopping[0].reps, 3u);
  EXPECT_GE(result.stopping[0].ess, StoppingPolicy::kDefaultEssFloor);
}

// --------------------------------------------- export and ingest

TEST(SequentialStopping, ExportRoundTripsStopMetadataThroughIngest) {
  NoiseLadderBackend backend;
  CampaignRunnerOptions opts;
  opts.workers = 2;
  CampaignRunner runner(backend, ladder_campaign(ladder_policy()), opts);
  const CampaignResult result = runner.run();

  const std::string path = temp_path("seq_export.csv");
  result.samples_dataset().save_csv(path);
  const Ingested ingested = load_measurements(path);
  EXPECT_TRUE(ingested.campaign);
  EXPECT_FALSE(ingested.stopping.empty());
  EXPECT_EQ(ingested.rounds, result.rounds);
  ASSERT_EQ(ingested.rep_counts.size(), result.config_count());
  for (std::size_t c = 0; c < result.config_count(); ++c) {
    EXPECT_EQ(ingested.rep_counts[c], result.rep_count(c));
  }
  EXPECT_EQ(ingested.cells.size(),
            std::accumulate(ingested.rep_counts.begin(), ingested.rep_counts.end(),
                            std::size_t{0}));
  std::remove(path.c_str());
}

TEST(SequentialStopping, ConfigCountIsExplicitNotDerived) {
  // Satellite regression: config_count() used to be cells.size() /
  // replications, which mis-grouped as soon as per-config rep counts
  // varied (and divided by zero under sequential mode's replications=0).
  NoiseLadderBackend backend;
  CampaignRunnerOptions opts;
  opts.workers = 1;
  CampaignRunner runner(backend, ladder_campaign(ladder_policy()), opts);
  const CampaignResult result = runner.run();
  EXPECT_EQ(result.config_count(), 3u);
  EXPECT_EQ(result.replications, 0u);
  EXPECT_NE(result.rep_count(0), result.rep_count(2))
      << "rep counts should differ across configs for this test to bite";
}

}  // namespace
}  // namespace sci::exec
