// End-to-end coverage for the campaign service stack: wire-format
// round trips, process-pool crash isolation, and the PR invariant --
// campaigns run through worker processes (any count, even across
// worker deaths) produce CSVs byte-identical to an in-process
// CampaignRunner. Plus the service-level queue/dedupe semantics and
// the cooperative interrupt drain (exec/interrupt.hpp).
//
// SCIBENCH_WORKER_PATH is injected by tests/CMakeLists.txt as the
// build-tree path of the scibench_worker binary.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "exec/interrupt.hpp"
#include "exec/process_pool.hpp"
#include "exec/runner.hpp"
#include "exec/service.hpp"
#include "exec/sim_backend.hpp"
#include "exec/wire.hpp"

namespace sci::exec {
namespace {

std::string csv_of(const core::Dataset& ds) {
  std::ostringstream os;
  ds.write_csv(os);
  return os.str();
}

std::string temp_path(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

ProcessPoolOptions pool_options(std::size_t workers, std::size_t crash_retries = 2) {
  ProcessPoolOptions popts;
  popts.worker_path = SCIBENCH_WORKER_PATH;
  popts.workers = workers;
  popts.crash_retries = crash_retries;
  return popts;
}

SimBackendOptions small_sim_options() {
  SimBackendOptions opts;
  opts.kernel = SimKernel::kPingPong;
  opts.samples = 24;
  opts.warmup = 2;
  opts.scale = 1e6;
  opts.unit = "us";
  return opts;
}

CampaignSpec grid_spec(const std::string& name = "svc_grid") {
  CampaignSpec spec;
  spec.name = name;
  spec.base.synchronization_method = "none (pingpong)";
  spec.base.environment["site"] = "unit test";
  spec.factors.push_back({"system", {"dora", "pilatus"}});
  spec.factors.push_back({"message_bytes", {"64", "4096"}});
  spec.replications = 2;
  spec.seed = 4242;
  return spec;
}

struct RunBytes {
  std::string samples;
  std::string summary;
};

RunBytes run_in_process(const CampaignSpec& spec, const SimBackendOptions& opts,
                        std::size_t workers) {
  SimBackend backend(opts);
  CampaignRunnerOptions ropts;
  ropts.workers = workers;
  CampaignRunner runner(backend, Campaign(spec), ropts);
  const CampaignResult result = runner.run();
  return {csv_of(result.samples_dataset()), csv_of(result.summary_dataset())};
}

// ------------------------------------------------------------- wire

TEST(Wire, HexU64AndDoubleRoundTrip) {
  const std::uint64_t seeds[] = {0ULL, 1ULL, 0x5c1b3ac4d2e9f107ULL,
                                 0xffffffffffffffffULL};
  for (const std::uint64_t s : seeds) {
    const std::string hex = wire::hex_u64(s);
    EXPECT_EQ(hex.size(), 16u);
    EXPECT_EQ(wire::parse_hex_u64(hex), s);
  }
  const double values[] = {0.0, -0.0, 1.5, -3.25e-9, 6.02214076e23};
  for (const double v : values) {
    EXPECT_EQ(wire::parse_hex_double(wire::hex_double(v)), v);
  }
  // NaN payloads survive bit-exactly (the reason samples travel as hex).
  const double nan = std::nan("0x5ca1ab1e");
  const std::string hex = wire::hex_double(nan);
  EXPECT_EQ(wire::hex_double(wire::parse_hex_double(hex)), hex);
  EXPECT_THROW((void)wire::parse_hex_u64("not-hex-not-16"), std::runtime_error);
}

TEST(Wire, CampaignEnvelopeRoundTripsByteIdentically) {
  CampaignSpec spec = grid_spec("wire_grid");
  spec.description = "round-trip fixture";
  spec.stopping = StoppingPolicy::sequential_ci(0.03, 3, 9);
  const SimBackendOptions backend = small_sim_options();

  const std::string line = wire::campaign_to_json(spec, backend);
  EXPECT_EQ(line.find('\n'), std::string::npos) << "wire lines must be one line";

  const wire::CampaignEnvelope envelope = wire::parse_campaign_json(line);
  EXPECT_EQ(wire::campaign_to_json(envelope.spec, envelope.backend), line);

  // The parse rebuilds the identical campaign: same grid, same seeds.
  const Campaign a{spec};
  const Campaign b{envelope.spec};
  ASSERT_EQ(a.config_count(), b.config_count());
  for (std::size_t i = 0; i < a.config_count(); ++i) {
    EXPECT_EQ(a.config(i).to_string(), b.config(i).to_string());
    EXPECT_EQ(a.seed_for(a.config(i), 1), b.seed_for(b.config(i), 1));
  }
  EXPECT_EQ(envelope.spec.stopping.describe(), spec.stopping.describe());
  EXPECT_EQ(envelope.backend.unit, backend.unit);
}

TEST(Wire, SeedOverrideIsNotSerializable) {
  CampaignSpec spec = grid_spec();
  spec.seed_override = [](const Config&, std::size_t) { return 7ULL; };
  EXPECT_THROW((void)wire::campaign_to_json(spec, {}), std::invalid_argument);
}

TEST(Wire, JobAndCellResultRoundTrip) {
  const Campaign campaign{grid_spec()};
  const Config config = campaign.config(2);
  const std::uint64_t seed = campaign.seed_for(config, 1);
  const std::string job_line = wire::job_to_json(small_sim_options(), config, seed);
  const wire::JobSpec job = wire::parse_job_json(job_line);
  EXPECT_EQ(job.seed, seed);
  EXPECT_EQ(job.config.index, config.index);
  EXPECT_EQ(job.config.to_string(), config.to_string());
  EXPECT_EQ(wire::job_to_json(job.backend, job.config, job.seed), job_line);

  CellResult result;
  result.samples = {1.5, -0.0, 3.0e-7};
  result.unit = "us";
  result.stop_reason = "fixed";
  result.warmup_discarded = 2;
  result.error = "";
  const std::string cell_line = wire::cell_result_to_json(result);
  const CellResult parsed = wire::parse_cell_result_json(cell_line);
  EXPECT_EQ(parsed.samples, result.samples);
  EXPECT_EQ(parsed.unit, "us");
  EXPECT_EQ(parsed.warmup_discarded, 2u);
  EXPECT_EQ(wire::cell_result_to_json(parsed), cell_line);
}

// ----------------------------------------------- pool byte-identity

TEST(ProcessPoolBackend, FixedCampaignMatchesInProcessByteForByte) {
  const CampaignSpec spec = grid_spec();
  const SimBackendOptions opts = small_sim_options();
  const RunBytes want = run_in_process(spec, opts, 2);

  for (const std::size_t workers : {2u, 3u}) {
    ProcessPool pool(pool_options(workers));
    PoolBackend backend(pool, opts);
    CampaignRunnerOptions ropts;
    ropts.workers = workers;
    CampaignRunner runner(backend, Campaign(spec), ropts);
    const CampaignResult result = runner.run();
    EXPECT_EQ(result.failed, 0u);
    EXPECT_EQ(csv_of(result.samples_dataset()), want.samples)
        << "worker processes changed result bytes (workers=" << workers << ")";
    EXPECT_EQ(csv_of(result.summary_dataset()), want.summary);
  }
}

TEST(ProcessPoolBackend, SequentialCampaignMatchesInProcessByteForByte) {
  CampaignSpec spec = grid_spec("svc_seq");
  spec.stopping = StoppingPolicy::sequential_ci(0.05, 3, 8);
  const SimBackendOptions opts = small_sim_options();
  const RunBytes want = run_in_process(spec, opts, 2);

  ProcessPool pool(pool_options(2));
  PoolBackend backend(pool, opts);
  CampaignRunnerOptions ropts;
  ropts.workers = 2;
  CampaignRunner runner(backend, Campaign(spec), ropts);
  const CampaignResult result = runner.run();
  EXPECT_TRUE(result.sequential);
  EXPECT_EQ(csv_of(result.samples_dataset()), want.samples);
  EXPECT_EQ(csv_of(result.summary_dataset()), want.summary);
}

TEST(ProcessPoolBackend, KilledWorkerRetriesSameSeedAndKeepsBytes) {
  // The kill_once drill: exactly one worker unlinks the sentinel and
  // dies mid-cell (emulating an external SIGKILL). The pool re-runs the
  // SAME (config, seed) on a fresh worker, so the campaign finishes
  // with zero failed cells and bytes identical to an undisturbed
  // in-process run (SimBackend ignores the worker_fault factor).
  CampaignSpec spec = grid_spec("svc_kill");
  spec.factors.push_back({"worker_fault", {"kill_once"}});
  const SimBackendOptions opts = small_sim_options();
  const RunBytes want = run_in_process(spec, opts, 2);

  const std::string sentinel = temp_path("kill_once.sentinel");
  { std::ofstream touch(sentinel); }
  ASSERT_EQ(::setenv("SCIBENCH_WORKER_KILL_FILE", sentinel.c_str(), 1), 0);

  ProcessPool pool(pool_options(2));
  PoolBackend backend(pool, opts);
  CampaignRunnerOptions ropts;
  ropts.workers = 2;
  CampaignRunner runner(backend, Campaign(spec), ropts);
  const CampaignResult result = runner.run();
  ::unsetenv("SCIBENCH_WORKER_KILL_FILE");

  EXPECT_EQ(pool.workers_crashed(), 1u);
  EXPECT_GE(pool.workers_spawned(), 3u);  // fleet of 2 + one respawn
  EXPECT_EQ(result.failed, 0u);
  EXPECT_EQ(csv_of(result.samples_dataset()), want.samples)
      << "a killed worker must not change result bytes";
  EXPECT_EQ(csv_of(result.summary_dataset()), want.summary);
}

TEST(ProcessPoolBackend, AbortingCellIsContainedAsFailedCell) {
  // A deterministic abort() kills every worker it touches; the pool
  // gives up after crash_retries, the runner's containment records a
  // failed cell, and every other cell still completes -- the property
  // an in-process backend could never provide.
  CampaignSpec spec;
  spec.name = "svc_abort";
  spec.factors.push_back({"message_bytes", {"64"}});
  spec.factors.push_back({"worker_fault", {"none", "abort"}});
  spec.replications = 2;
  spec.seed = 77;

  ProcessPool pool(pool_options(2, /*crash_retries=*/1));
  PoolBackend backend(pool, small_sim_options());
  CampaignRunnerOptions ropts;
  ropts.workers = 2;
  CampaignRunner runner(backend, Campaign(spec), ropts);
  const CampaignResult result = runner.run();

  EXPECT_EQ(result.failed, 2u);  // both replications of the abort column
  EXPECT_GE(pool.workers_crashed(), 2u);
  std::size_t ok_cells = 0;
  for (const CampaignCell& cell : result.cells) {
    const std::string& fault = cell.config.level("worker_fault");
    if (fault == "abort") {
      EXPECT_FALSE(cell.result.error.empty());
      EXPECT_TRUE(cell.result.samples.empty());
    } else {
      EXPECT_TRUE(cell.result.error.empty());
      EXPECT_FALSE(cell.result.samples.empty());
      ++ok_cells;
    }
  }
  EXPECT_EQ(ok_cells, 2u);
}

// ------------------------------------------------------ the service

/// Collects the event stream of one submission.
class CollectSink : public ServiceEventSink {
 public:
  void on_event(const std::string& line) override {
    std::lock_guard<std::mutex> lock(mutex_);
    lines_.push_back(line);
  }
  [[nodiscard]] std::vector<std::string> lines() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return lines_;
  }
  [[nodiscard]] bool saw(const std::string& needle) const {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const std::string& line : lines_) {
      if (line.find(needle) != std::string::npos) return true;
    }
    return false;
  }

 private:
  mutable std::mutex mutex_;
  std::vector<std::string> lines_;
};

TEST(CampaignService, DedupesIdenticalSubmissionsAcrossClients) {
  const CampaignSpec spec = grid_spec("svc_dedupe");
  const SimBackendOptions opts = small_sim_options();

  ProcessPool pool(pool_options(2));
  CampaignService service(pool);

  Submission first;
  first.spec = spec;
  first.backend = opts;
  first.samples_csv = temp_path("svc_dedupe_a.csv");
  Submission second = first;
  second.samples_csv = temp_path("svc_dedupe_b.csv");

  CollectSink sink_a;
  CollectSink sink_b;
  const std::uint64_t job_a = service.submit(first, &sink_a);
  const std::uint64_t job_b = service.submit(second, &sink_b);
  const JobOutcome out_a = service.wait(job_a);
  const JobOutcome out_b = service.wait(job_b);

  ASSERT_TRUE(out_a.ran) << out_a.error;
  ASSERT_TRUE(out_b.ran) << out_b.error;
  EXPECT_EQ(out_a.cells, 8u);
  EXPECT_EQ(out_a.deduped, 0u);
  EXPECT_EQ(out_b.deduped, out_b.cells)
      << "second client's cells must come from the shared cache";

  const std::string csv_a = slurp(first.samples_csv);
  const std::string csv_b = slurp(second.samples_csv);
  EXPECT_FALSE(csv_a.empty());
  EXPECT_EQ(csv_a, csv_b) << "dedupe must serve byte-identical results";
  EXPECT_EQ(csv_a, run_in_process(spec, opts, 2).samples);

  EXPECT_TRUE(sink_a.saw("\"event\": \"queued\""));
  EXPECT_TRUE(sink_a.saw("\"event\": \"done\""));
  EXPECT_TRUE(sink_b.saw("\"deduped\": true"));

  const obs::DaemonMetrics metrics = service.metrics();
  EXPECT_EQ(metrics.jobs_submitted, 2u);
  EXPECT_EQ(metrics.jobs_completed, 2u);
  EXPECT_EQ(metrics.cells_deduped, out_b.deduped);
  EXPECT_GE(metrics.workers_spawned, 2u);
}

TEST(CampaignService, RejectsInvalidSpecWithoutDying) {
  ProcessPool pool(pool_options(1));
  CampaignService service(pool);

  Submission bad;
  bad.spec = grid_spec("");  // empty name: Campaign's ctor throws
  CollectSink sink;
  const JobOutcome out = service.wait(service.submit(bad, &sink));
  EXPECT_FALSE(out.ran);
  EXPECT_FALSE(out.error.empty());
  EXPECT_TRUE(sink.saw("\"event\": \"rejected\""));
  EXPECT_EQ(service.metrics().jobs_rejected, 1u);

  // The service survives and still runs a good job afterwards.
  Submission good;
  good.spec = grid_spec("svc_after_reject");
  good.backend = small_sim_options();
  const JobOutcome ok = service.wait(service.submit(good));
  EXPECT_TRUE(ok.ran) << ok.error;
  EXPECT_EQ(ok.failed, 0u);
}

// -------------------------------------------------------- interrupt

/// Sim wrapper that raises the interrupt flag after `trip` cells.
class TrippingBackend : public Backend {
 public:
  TrippingBackend(SimBackendOptions opts, std::size_t trip, std::atomic<bool>* flag)
      : inner_(std::move(opts)), trip_(trip), flag_(flag) {}
  std::string name() const override { return inner_.name(); }
  std::string describe() const override { return inner_.describe(); }
  CellResult run(const Config& config, std::uint64_t seed) override {
    CellResult r = inner_.run(config, seed);
    if (calls_.fetch_add(1, std::memory_order_relaxed) + 1 >= trip_) {
      flag_->store(true, std::memory_order_relaxed);
    }
    return r;
  }

 private:
  SimBackend inner_;
  std::size_t trip_;
  std::atomic<bool>* flag_;
  std::atomic<std::size_t> calls_{0};
};

TEST(Interrupt, DrainedCampaignResumesToIdenticalBytes) {
  // A signal mid-campaign (flag raised after 3 cells) drains the
  // remaining cells as interrupted; the journal keeps every finished
  // cell, and a rerun against the same journal completes the campaign
  // with bytes identical to an undisturbed run.
  const CampaignSpec spec = grid_spec("svc_interrupt");
  const SimBackendOptions opts = small_sim_options();
  const RunBytes want = run_in_process(spec, opts, 2);
  const std::string journal = temp_path("svc_interrupt.journal");

  std::atomic<bool> flag{false};
  std::size_t first_pass_executed = 0;
  {
    TrippingBackend backend(opts, 3, &flag);
    CampaignRunnerOptions ropts;
    ropts.workers = 2;
    ropts.journal_path = journal;
    ropts.interrupt = &flag;
    CampaignRunner runner(backend, Campaign(spec), ropts);
    const CampaignResult result = runner.run();
    EXPECT_GT(result.interrupted, 0u);
    EXPECT_LT(result.executed, 8u);
    first_pass_executed = result.executed;
  }
  {
    SimBackend backend(opts);
    CampaignRunnerOptions ropts;
    ropts.workers = 2;
    ropts.journal_path = journal;
    CampaignRunner runner(backend, Campaign(spec), ropts);
    const CampaignResult result = runner.run();
    EXPECT_EQ(result.interrupted, 0u);
    EXPECT_EQ(result.journal_hits, first_pass_executed);
    EXPECT_EQ(csv_of(result.samples_dataset()), want.samples)
        << "kill/resume must reproduce the undisturbed bytes";
    EXPECT_EQ(csv_of(result.summary_dataset()), want.summary);
  }
}

// ------------------------------------------------- socket transport

TEST(UnixSocket, LineTransportRoundTrips) {
  const std::string path = temp_path("svc_socket.sock");
  const int listen_fd = listen_unix(path);
  ASSERT_GE(listen_fd, 0);

  std::thread server([listen_fd] {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    ASSERT_GE(fd, 0);
    std::string line;
    while (read_line_fd(fd, line)) {
      ASSERT_TRUE(write_line_fd(fd, "echo:" + line));
    }
    ::close(fd);
  });

  const int fd = connect_unix(path);
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(write_line_fd(fd, "{\"op\": \"submit\"}"));
  ASSERT_TRUE(write_line_fd(fd, "second line"));
  std::string reply;
  ASSERT_TRUE(read_line_fd(fd, reply));
  EXPECT_EQ(reply, "echo:{\"op\": \"submit\"}");
  ASSERT_TRUE(read_line_fd(fd, reply));
  EXPECT_EQ(reply, "echo:second line");
  ::close(fd);  // server sees EOF and exits

  server.join();
  ::close(listen_fd);
  ::unlink(path.c_str());
}

}  // namespace
}  // namespace sci::exec
