#include <gtest/gtest.h>

#include <vector>

#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"
#include "stats/factorial.hpp"

namespace sci::stats {
namespace {

TEST(Factorial, LevelGenerationYatesOrder) {
  const auto levels = full_factorial_levels(3);
  ASSERT_EQ(levels.size(), 8u);
  EXPECT_EQ(levels[0], (std::vector<bool>{false, false, false}));
  EXPECT_EQ(levels[1], (std::vector<bool>{true, false, false}));  // A fastest
  EXPECT_EQ(levels[2], (std::vector<bool>{false, true, false}));
  EXPECT_EQ(levels[7], (std::vector<bool>{true, true, true}));
  EXPECT_THROW(full_factorial_levels(0), std::invalid_argument);
}

// Jain's memory/cache textbook example shape: y = 10 + 2 A + 3 B + 1 AB.
TEST(Factorial, RecoversExactLinearModel) {
  std::vector<FactorialRun> runs;
  for (const auto& lv : full_factorial_levels(2)) {
    const double a = lv[0] ? 1.0 : -1.0;
    const double b = lv[1] ? 1.0 : -1.0;
    runs.push_back({lv, {10.0 + 2.0 * a + 3.0 * b + 1.0 * a * b}});
  }
  const auto fit = analyze_factorial({"A", "B"}, runs);
  EXPECT_NEAR(fit.grand_mean, 10.0, 1e-12);
  ASSERT_EQ(fit.effects.size(), 3u);
  // Ordered: A, B, AB.
  EXPECT_EQ(fit.effects[0].name, "A");
  EXPECT_NEAR(fit.effects[0].estimate, 2.0, 1e-12);
  EXPECT_EQ(fit.effects[1].name, "B");
  EXPECT_NEAR(fit.effects[1].estimate, 3.0, 1e-12);
  EXPECT_EQ(fit.effects[2].name, "AB");
  EXPECT_NEAR(fit.effects[2].estimate, 1.0, 1e-12);
  // Variation decomposition: SS proportional to estimate^2 (4:9:1)/14.
  EXPECT_NEAR(fit.effects[1].variation_explained, 9.0 / 14.0, 1e-12);
  EXPECT_EQ(fit.error_fraction, 0.0);
}

TEST(Factorial, PredictReproducesCellMeans) {
  std::vector<FactorialRun> runs;
  rng::Xoshiro256 gen(1);
  for (const auto& lv : full_factorial_levels(3)) {
    runs.push_back({lv, {rng::uniform(gen, 0.0, 100.0)}});
  }
  const auto fit = analyze_factorial({"A", "B", "C"}, runs);
  // With r = 1 the full model is saturated: predictions are exact.
  for (const auto& run : runs) {
    EXPECT_NEAR(fit.predict(run.levels), run.responses[0], 1e-9);
  }
}

TEST(Factorial, ReplicationYieldsSignificanceCalls) {
  // Strong A effect + pure noise elsewhere.
  rng::Xoshiro256 gen(2);
  std::vector<FactorialRun> runs;
  for (const auto& lv : full_factorial_levels(2)) {
    const double a = lv[0] ? 1.0 : -1.0;
    std::vector<double> reps;
    for (int r = 0; r < 10; ++r) {
      reps.push_back(50.0 + 10.0 * a + rng::normal(gen, 0.0, 1.0));
    }
    runs.push_back({lv, reps});
  }
  const auto fit = analyze_factorial({"A", "B"}, runs);
  ASSERT_TRUE(fit.effects[0].ci.has_value());
  EXPECT_TRUE(fit.effects[0].significant());   // A
  EXPECT_FALSE(fit.effects[1].significant());  // B is noise
  EXPECT_NEAR(fit.effects[0].estimate, 10.0, 0.5);
  EXPECT_GT(fit.effects[0].variation_explained, 0.9);
  EXPECT_EQ(fit.replicates, 10u);
}

TEST(Factorial, UnreplicatedHasNoCis) {
  std::vector<FactorialRun> runs;
  for (const auto& lv : full_factorial_levels(2)) runs.push_back({lv, {1.0}});
  const auto fit = analyze_factorial({"A", "B"}, runs);
  for (const auto& e : fit.effects) EXPECT_FALSE(e.ci.has_value());
}

TEST(Factorial, Validation) {
  std::vector<FactorialRun> runs;
  for (const auto& lv : full_factorial_levels(2)) runs.push_back({lv, {1.0}});
  // Wrong factor count.
  EXPECT_THROW(analyze_factorial({"A"}, runs), std::invalid_argument);
  // Duplicate configuration.
  auto dup = runs;
  dup[1].levels = dup[0].levels;
  EXPECT_THROW(analyze_factorial({"A", "B"}, dup), std::invalid_argument);
  // Unequal replication.
  auto uneq = runs;
  uneq[2].responses.push_back(2.0);
  EXPECT_THROW(analyze_factorial({"A", "B"}, uneq), std::invalid_argument);
}

TEST(Factorial, ToStringListsEffects) {
  std::vector<FactorialRun> runs;
  for (const auto& lv : full_factorial_levels(2)) {
    runs.push_back({lv, {lv[0] ? 2.0 : 1.0, lv[0] ? 2.1 : 1.1}});
  }
  const auto fit = analyze_factorial({"block_size", "numa"}, runs);
  const auto text = fit.to_string();
  EXPECT_NE(text.find("A = block_size"), std::string::npos);
  EXPECT_NE(text.find("AB"), std::string::npos);
  EXPECT_NE(text.find("experimental error"), std::string::npos);
}

class FactorialSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FactorialSizes, EffectCountAndVariationSum) {
  const std::size_t k = GetParam();
  rng::Xoshiro256 gen(3 + k);
  std::vector<FactorialRun> runs;
  for (const auto& lv : full_factorial_levels(k)) {
    runs.push_back({lv, {rng::normal(gen, 10.0, 2.0), rng::normal(gen, 10.0, 2.0)}});
  }
  std::vector<std::string> names;
  for (std::size_t f = 0; f < k; ++f) names.push_back(std::string(1, char('A' + f)));
  const auto fit = analyze_factorial(names, runs);
  EXPECT_EQ(fit.effects.size(), (std::size_t{1} << k) - 1);
  double total = fit.error_fraction;
  for (const auto& e : fit.effects) total += e.variation_explained;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Ks, FactorialSizes, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace sci::stats
