// sci::fault: preset catalogue and validation, "machine+fault"
// composition in make_machine, determinism of injected faults (seed
// identity and World::reset replay), and the fault counters.
#include <gtest/gtest.h>

#include <vector>

#include "fault/fault.hpp"
#include "obs/counters.hpp"
#include "sim/machine.hpp"
#include "simmpi/comm.hpp"

namespace sci {
namespace {

// ---------------------------------------------------------- presets

TEST(FaultSpec, DefaultIsBenign) {
  fault::FaultSpec spec;
  EXPECT_FALSE(spec.any());
  EXPECT_NO_THROW(spec.validate());
}

TEST(FaultSpec, PresetCatalogue) {
  for (const auto& name : fault::fault_preset_names()) {
    const fault::FaultSpec spec = fault::fault_preset(name);
    EXPECT_NO_THROW(spec.validate()) << name;
    if (name != "none") {
      EXPECT_TRUE(spec.any()) << name;
    }
  }
  EXPECT_FALSE(fault::fault_preset("none").any());
  EXPECT_GT(fault::fault_preset("lossy").drop_prob, 0.0);
  EXPECT_GT(fault::fault_preset("degraded").link_degrade_prob, 0.0);
  EXPECT_GT(fault::fault_preset("straggler").straggler_prob, 0.0);
  const fault::FaultSpec chaos = fault::fault_preset("chaos");
  EXPECT_GT(chaos.drop_prob, 0.0);
  EXPECT_GT(chaos.link_degrade_prob, 0.0);
  EXPECT_GT(chaos.straggler_prob, 0.0);
}

TEST(FaultSpec, UnknownPresetThrowsListingKnownOnes) {
  try {
    (void)fault::fault_preset("nosuch");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("lossy"), std::string::npos) << e.what();
  }
}

TEST(FaultSpec, ValidateRejectsNonsense) {
  fault::FaultSpec spec;
  spec.drop_prob = 1.5;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = {};
  spec.link_degrade_factor = 0.5;  // a "degradation" that speeds links up
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = {};
  spec.straggler_factor = 0.0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = {};
  spec.retransmit_timeout_s = -1e-6;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

// ------------------------------------------------------ composition

TEST(MachineComposition, PlusSuffixAttachesFaultPreset) {
  const sim::Machine plain = sim::make_machine("dora");
  const sim::Machine lossy = sim::make_machine("dora+lossy");
  EXPECT_EQ(lossy.name, "dora+lossy");
  EXPECT_FALSE(plain.faults.any());
  EXPECT_TRUE(lossy.faults.any());
  EXPECT_EQ(lossy.faults.drop_prob, fault::fault_preset("lossy").drop_prob);
  // The base machine is untouched by the suffix.
  EXPECT_EQ(lossy.loggp.latency_s, plain.loggp.latency_s);
  EXPECT_EQ(lossy.node_peak_flops, plain.node_peak_flops);
}

TEST(MachineComposition, UnknownPartsThrow) {
  EXPECT_THROW((void)sim::make_machine("dora+nosuch"), std::invalid_argument);
  EXPECT_THROW((void)sim::make_machine("nosuch+lossy"), std::invalid_argument);
}

TEST(MachineComposition, PresetCacheKeysOnFullName) {
  const auto plain = sim::machine_preset("dora");
  const auto lossy = sim::machine_preset("dora+lossy");
  EXPECT_NE(plain.get(), lossy.get());
  EXPECT_TRUE(lossy->faults.any());
  EXPECT_EQ(sim::machine_preset("dora+lossy").get(), lossy.get());
}

// ----------------------------------------------------- determinism

/// `rounds` ping-pong exchanges between ranks 0 and 1; returns rank 0's
/// elapsed wall time (faults included).
double pingpong_elapsed(const sim::Machine& machine, std::uint64_t seed,
                        int rounds = 50, std::size_t bytes = 4096) {
  simmpi::World world(machine, 2, seed);
  double elapsed = 0.0;
  world.launch_on(0, [&](simmpi::Comm& c) -> sim::Task<void> {
    const double t0 = c.wtime();
    for (int i = 0; i < rounds; ++i) {
      co_await c.compute(2e-6);  // gives straggler episodes a surface
      co_await c.send(1, 1, bytes);
      (void)co_await c.recv(1, 2);
    }
    elapsed = c.wtime() - t0;
  });
  world.launch_on(1, [&](simmpi::Comm& c) -> sim::Task<void> {
    for (int i = 0; i < rounds; ++i) {
      (void)co_await c.recv(0, 1);
      co_await c.compute(2e-6);
      co_await c.send(0, 2, bytes);
    }
  });
  world.run();
  return elapsed;
}

TEST(FaultDeterminism, SameSeedSameFaults) {
  const sim::Machine chaos = sim::make_machine("dora+chaos");
  for (std::uint64_t seed : {1ULL, 42ULL, 1234ULL}) {
    EXPECT_EQ(pingpong_elapsed(chaos, seed), pingpong_elapsed(chaos, seed))
        << "seed=" << seed;
  }
  // Different seeds draw different fault episodes.
  EXPECT_NE(pingpong_elapsed(chaos, 1), pingpong_elapsed(chaos, 2));
}

TEST(FaultDeterminism, ResetReplaysFaultDraws) {
  const sim::Machine chaos = sim::make_machine("pilatus+chaos");
  simmpi::World world(chaos, 2, 99);
  double first = 0.0, second = 0.0;
  const auto program = [](simmpi::World& w, double& out) {
    w.launch_on(0, [&out](simmpi::Comm& c) -> sim::Task<void> {
      const double t0 = c.wtime();
      for (int i = 0; i < 30; ++i) {
        co_await c.send(1, 1, 8192);
        (void)co_await c.recv(1, 2);
        co_await c.compute(5e-6);
      }
      out = c.wtime() - t0;
    });
    w.launch_on(1, [](simmpi::Comm& c) -> sim::Task<void> {
      for (int i = 0; i < 30; ++i) {
        (void)co_await c.recv(0, 1);
        co_await c.send(0, 2, 8192);
        co_await c.compute(5e-6);
      }
    });
  };
  program(world, first);
  world.run();
  world.reset(99);
  program(world, second);
  world.run();
  EXPECT_EQ(first, second);
}

TEST(FaultDeterminism, BenignMachineDrawsNothingExtra) {
  // A "+none" fault spec must not disturb the machine's RNG stream:
  // faults.any() is false, so reset() draws exactly what "dora" draws.
  const double plain = pingpong_elapsed(sim::make_machine("dora"), 7);
  const double none = pingpong_elapsed(sim::make_machine("dora+none"), 7);
  EXPECT_EQ(plain, none);
}

// --------------------------------------------------------- effects

TEST(FaultEffects, InjectedFaultsCostTimeAndCount) {
  obs::CounterRegistry::instance().reset_all();
  const sim::Machine plain = sim::make_machine("dora");
  const sim::Machine chaos = sim::make_machine("dora+chaos");
  double clean_total = 0.0, faulty_total = 0.0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    clean_total += pingpong_elapsed(plain, seed, 100);
    faulty_total += pingpong_elapsed(chaos, seed, 100);
  }
  EXPECT_GT(faulty_total, clean_total);

  // Across eight seeds of "chaos", every fault class fires at least once
  // (drop_prob 0.02 x 200 sends/run; degrade/straggler 0.10-0.15/draw).
  const auto snap = obs::CounterRegistry::instance().snapshot();
  EXPECT_GT(obs::snapshot_value(snap, obs::keys::kFaultDrops), 0u);
  EXPECT_GT(obs::snapshot_value(snap, obs::keys::kFaultRetransmitNs), 0u);
  EXPECT_GT(obs::snapshot_value(snap, obs::keys::kFaultStragglerNs), 0u);
}

TEST(FaultEffects, CleanMachinePublishesNoFaultCounters) {
  obs::CounterRegistry::instance().reset_all();
  (void)pingpong_elapsed(sim::make_machine("dora"), 3, 100);
  const auto snap = obs::CounterRegistry::instance().snapshot();
  EXPECT_EQ(obs::snapshot_value(snap, obs::keys::kFaultDrops), 0u);
  EXPECT_EQ(obs::snapshot_value(snap, obs::keys::kFaultDegradedTransfers), 0u);
  EXPECT_EQ(obs::snapshot_value(snap, obs::keys::kFaultStragglerNs), 0u);
}

TEST(FaultEffects, DegradedLinksShowUpInCounters) {
  obs::CounterRegistry::instance().reset_all();
  // link_degrade_prob 0.15 per directed route, 2 routes per seed: across
  // 32 seeds the chance no route ever degrades is ~(0.85^64) ~ 3e-5.
  const sim::Machine degraded = sim::make_machine("dora+degraded");
  for (std::uint64_t seed = 1; seed <= 32; ++seed) {
    (void)pingpong_elapsed(degraded, seed, 10);
  }
  const auto snap = obs::CounterRegistry::instance().snapshot();
  EXPECT_GT(obs::snapshot_value(snap, obs::keys::kFaultDegradedTransfers), 0u);
}

}  // namespace
}  // namespace sci
