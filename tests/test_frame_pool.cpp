// FramePool unit tests plus the arena stress test: the PR-4 contract is
// that a warmed-up replication loop never enters the memory allocator,
// and these tests make that a failing assertion instead of a hope.
//
// This file gets its own test binary: it overrides global operator new
// to count allocator entries, which must not leak into other suites.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <new>
#include <vector>

#include "sim/frame_pool.hpp"
#include "sim/machine.hpp"
#include "sim/task.hpp"
#include "simmpi/benchmarks.hpp"
#include "simmpi/collectives.hpp"
#include "simmpi/comm.hpp"

namespace {

// -- global allocation counter ----------------------------------------
// Counts every entry into the real allocator, FramePool refills
// included. gtest itself allocates freely, so tests only compare deltas
// taken immediately around the code under audit.

std::atomic<std::uint64_t> g_new_calls{0};

std::uint64_t new_calls() { return g_new_calls.load(std::memory_order_relaxed); }

}  // namespace

void* operator new(std::size_t size) {
  g_new_calls.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_new_calls.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace {

using sci::sim::FramePool;

TEST(FramePool, SecondAllocationOfASizeClassComesFromTheFreeList) {
  FramePool& pool = FramePool::local();
  pool.set_enabled(true);

  void* a = pool.allocate(200);
  const std::uint64_t heap_after_first = pool.heap_allocs();
  pool.deallocate(a);
  ASSERT_GE(pool.cached_blocks(), 1u);

  const std::uint64_t hits_before = pool.pool_hits();
  void* b = pool.allocate(200);  // same 64-byte class
  EXPECT_EQ(pool.heap_allocs(), heap_after_first);
  EXPECT_EQ(pool.pool_hits(), hits_before + 1);
  EXPECT_EQ(b, a);  // LIFO free list hands the block straight back
  pool.deallocate(b);
}

TEST(FramePool, DistinctSizeClassesDoNotShareBlocks) {
  FramePool& pool = FramePool::local();
  pool.set_enabled(true);

  void* small = pool.allocate(40);
  pool.deallocate(small);
  const std::uint64_t heap_before = pool.heap_allocs();
  void* large = pool.allocate(1000);  // different bucket: must refill
  EXPECT_EQ(pool.heap_allocs(), heap_before + 1);
  EXPECT_NE(large, small);
  pool.deallocate(large);
}

TEST(FramePool, OversizedFramesBypassTheBucketsAndAreTallied) {
  FramePool& pool = FramePool::local();
  pool.set_enabled(true);

  const std::size_t cached_before = pool.cached_blocks();
  const std::uint64_t heap_before = pool.heap_allocs();
  void* big = pool.allocate(FramePool::kMaxPooledBytes + 1);
  EXPECT_EQ(pool.heap_allocs(), heap_before + 1);
  pool.deallocate(big);
  // Straight back to the heap: nothing cached.
  EXPECT_EQ(pool.cached_blocks(), cached_before);

  const std::uint64_t heap_after = pool.heap_allocs();
  void* again = pool.allocate(FramePool::kMaxPooledBytes + 1);
  EXPECT_EQ(pool.heap_allocs(), heap_after + 1);  // no reuse for oversize
  pool.deallocate(again);
}

TEST(FramePool, DisabledPoolRoutesEverythingThroughTheHeap) {
  FramePool& pool = FramePool::local();
  pool.set_enabled(true);
  // Warm the bucket, then disable: the cached block must NOT be used.
  pool.deallocate(pool.allocate(100));

  pool.set_enabled(false);
  const std::size_t cached_before = pool.cached_blocks();
  const std::uint64_t heap_before = pool.heap_allocs();
  void* p = pool.allocate(100);
  EXPECT_EQ(pool.heap_allocs(), heap_before + 1);
  pool.deallocate(p);
  EXPECT_EQ(pool.cached_blocks(), cached_before);  // not cached either

  pool.set_enabled(true);
  pool.trim();
}

TEST(FramePool, BlocksSurviveAnEnableFlipBetweenAllocateAndFree) {
  FramePool& pool = FramePool::local();

  // Allocated while disabled, freed while enabled: the header says
  // "heap", so the free must bypass the free list.
  pool.set_enabled(false);
  void* heap_block = pool.allocate(100);
  pool.set_enabled(true);
  const std::size_t cached = pool.cached_blocks();
  pool.deallocate(heap_block);
  EXPECT_EQ(pool.cached_blocks(), cached);

  // Allocated while enabled, freed while disabled: the header says
  // "pooled", so the block is cached for later reuse.
  void* pooled_block = pool.allocate(100);
  pool.set_enabled(false);
  pool.deallocate(pooled_block);
  EXPECT_EQ(pool.cached_blocks(), cached + 1);
  pool.set_enabled(true);
  pool.trim();
}

TEST(FramePool, TrimReturnsEveryCachedBlock) {
  FramePool& pool = FramePool::local();
  pool.set_enabled(true);
  std::vector<void*> blocks;
  for (int i = 0; i < 8; ++i) blocks.push_back(pool.allocate(64 * (i + 1)));
  for (void* p : blocks) pool.deallocate(p);
  ASSERT_GE(pool.cached_blocks(), 8u);
  pool.trim();
  EXPECT_EQ(pool.cached_blocks(), 0u);
}

TEST(FramePool, CoroutineFramesRouteThroughThePool) {
#if !SCIBENCH_POOLING
  GTEST_SKIP() << "built with SCIBENCH_POOLING=OFF";
#endif
  FramePool& pool = FramePool::local();
  pool.set_enabled(true);

  auto make_task = []() -> sci::sim::Task<void> { co_return; };
  {
    auto warm = make_task();  // first frame of this size: one refill
    warm.start();
  }
  const std::uint64_t heap_before = pool.heap_allocs();
  const std::uint64_t hits_before = pool.pool_hits();
  {
    auto task = make_task();
    task.start();
    EXPECT_TRUE(task.done());
  }
  EXPECT_EQ(pool.heap_allocs(), heap_before);
  EXPECT_GT(pool.pool_hits(), hits_before);
}

// -- arena stress: churn worlds of alternating rank counts ------------
//
// The tentpole acceptance criterion: from the second replication of a
// shape onward, a payload-free replication (reset + launch + run) makes
// ZERO calls into the memory allocator. Alternating between two rank
// counts makes the pool juggle two working sets at once.

sci::sim::Task<void> barrier_program(sci::simmpi::Comm& comm) {
  for (int i = 0; i < 4; ++i) co_await sci::simmpi::barrier(comm);
}

std::uint64_t replication_allocs(sci::simmpi::World& world, std::uint64_t seed) {
  const std::uint64_t before = new_calls();
  world.reset(seed);
  world.launch(barrier_program);
  world.run();
  return new_calls() - before;
}

TEST(FramePoolStress, AlternatingWorldShapesRunAllocationFreeAfterWarmup) {
#if !SCIBENCH_POOLING
  GTEST_SKIP() << "built with SCIBENCH_POOLING=OFF";
#endif
  sci::sim::FramePool::local().set_enabled(true);
  const sci::sim::Machine machine = sci::sim::make_noiseless(16);
  sci::simmpi::World small(machine, 4, 1);
  sci::simmpi::World large(machine, 9, 1);  // odd count: uneven trees

  // Warmup: let every buffer and free list reach its high-water mark.
  for (std::uint64_t rep = 0; rep < 3; ++rep) {
    (void)replication_allocs(small, 100 + rep);
    (void)replication_allocs(large, 200 + rep);
  }

  // Steady state: the allocator is never entered again.
  for (std::uint64_t rep = 0; rep < 8; ++rep) {
    EXPECT_EQ(replication_allocs(small, 300 + rep), 0u)
        << "small world, rep " << rep;
    EXPECT_EQ(replication_allocs(large, 400 + rep), 0u)
        << "large world, rep " << rep;
  }
}

TEST(FramePoolStress, PingPongBenchIsAllocationFreeAfterWarmup) {
#if !SCIBENCH_POOLING
  GTEST_SKIP() << "built with SCIBENCH_POOLING=OFF";
#endif
  sci::sim::FramePool::local().set_enabled(true);
  sci::simmpi::PingPongBench bench(sci::sim::make_noiseless(4), 64, 4);
  for (std::uint64_t rep = 0; rep < 2; ++rep) (void)bench.run(64, rep);  // warmup

  for (std::uint64_t rep = 2; rep < 6; ++rep) {
    const std::uint64_t before = new_calls();
    const std::vector<double>& samples = bench.run(64, rep);
    const std::uint64_t allocs = new_calls() - before;
    EXPECT_EQ(allocs, 0u) << "rep " << rep;
    EXPECT_EQ(samples.size(), 64u);
  }
}

}  // namespace
