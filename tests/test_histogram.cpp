#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <vector>

#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"
#include "stats/histogram.hpp"

namespace sci::stats {
namespace {

TEST(Histogram, CountsSumToN) {
  rng::Xoshiro256 gen(1);
  std::vector<double> v;
  for (int i = 0; i < 5000; ++i) v.push_back(rng::normal(gen, 0.0, 1.0));
  const auto h = make_histogram(v, 32);
  EXPECT_EQ(h.bins(), 32u);
  EXPECT_EQ(std::accumulate(h.counts.begin(), h.counts.end(), std::size_t{0}), v.size());
}

TEST(Histogram, DensityIntegratesToOne) {
  rng::Xoshiro256 gen(2);
  std::vector<double> v;
  for (int i = 0; i < 10000; ++i) v.push_back(rng::exponential(gen, 2.0));
  const auto h = make_histogram(v);
  double area = 0.0;
  for (std::size_t i = 0; i < h.bins(); ++i) {
    area += h.density[i] * (h.edges[i + 1] - h.edges[i]);
  }
  EXPECT_NEAR(area, 1.0, 1e-9);
}

TEST(Histogram, AutoBinCountReasonable) {
  rng::Xoshiro256 gen(3);
  std::vector<double> v;
  for (int i = 0; i < 10000; ++i) v.push_back(rng::normal(gen, 5.0, 1.0));
  const auto h = make_histogram(v);
  EXPECT_GE(h.bins(), 10u);
  EXPECT_LE(h.bins(), 512u);
}

TEST(Histogram, EdgesMonotoneAndCoverRange) {
  const std::vector<double> v = {-3.0, 0.0, 7.0};
  const auto h = make_histogram(v, 4);
  EXPECT_EQ(h.edges.front(), -3.0);
  EXPECT_EQ(h.edges.back(), 7.0);
  for (std::size_t i = 1; i < h.edges.size(); ++i) EXPECT_GT(h.edges[i], h.edges[i - 1]);
}

TEST(Histogram, ConstantDataSafe) {
  const std::vector<double> v(100, 42.0);
  const auto h = make_histogram(v);
  EXPECT_EQ(std::accumulate(h.counts.begin(), h.counts.end(), std::size_t{0}), 100u);
}

TEST(Kde, DensityIntegratesToOne) {
  rng::Xoshiro256 gen(4);
  std::vector<double> v;
  for (int i = 0; i < 5000; ++i) v.push_back(rng::normal(gen, 10.0, 2.0));
  const auto curve = kernel_density(v, 256);
  double area = 0.0;
  for (std::size_t i = 1; i < curve.x.size(); ++i) {
    area += 0.5 * (curve.density[i] + curve.density[i - 1]) * (curve.x[i] - curve.x[i - 1]);
  }
  EXPECT_NEAR(area, 1.0, 0.02);
  EXPECT_GT(curve.bandwidth, 0.0);
}

TEST(Kde, PeakNearMode) {
  rng::Xoshiro256 gen(5);
  std::vector<double> v;
  for (int i = 0; i < 20000; ++i) v.push_back(rng::normal(gen, 3.0, 0.5));
  const auto curve = kernel_density(v, 128);
  std::size_t argmax = 0;
  for (std::size_t i = 1; i < curve.density.size(); ++i) {
    if (curve.density[i] > curve.density[argmax]) argmax = i;
  }
  EXPECT_NEAR(curve.x[argmax], 3.0, 0.2);
}

TEST(Kde, BimodalShapeVisible) {
  rng::Xoshiro256 gen(6);
  std::vector<double> v;
  for (int i = 0; i < 10000; ++i) {
    v.push_back(rng::bernoulli(gen, 0.5) ? rng::normal(gen, 0.0, 0.3)
                                         : rng::normal(gen, 5.0, 0.3));
  }
  const auto curve = kernel_density(v, 200, 0.2);
  // Density at the valley (x ~ 2.5) should be well below both peaks.
  double valley = 1e9, peak0 = 0.0, peak5 = 0.0;
  for (std::size_t i = 0; i < curve.x.size(); ++i) {
    if (std::abs(curve.x[i] - 2.5) < 0.5) valley = std::min(valley, curve.density[i]);
    if (std::abs(curve.x[i]) < 0.5) peak0 = std::max(peak0, curve.density[i]);
    if (std::abs(curve.x[i] - 5.0) < 0.5) peak5 = std::max(peak5, curve.density[i]);
  }
  EXPECT_LT(valley, 0.2 * peak0);
  EXPECT_LT(valley, 0.2 * peak5);
}

TEST(Kde, ThinsVeryLongSeries) {
  rng::Xoshiro256 gen(7);
  std::vector<double> v;
  for (int i = 0; i < 200000; ++i) v.push_back(rng::normal(gen, 0.0, 1.0));
  const auto curve = kernel_density(v, 64);  // must not take forever
  EXPECT_EQ(curve.x.size(), 64u);
}

TEST(HistogramKde, InputValidation) {
  EXPECT_THROW(make_histogram({}), std::invalid_argument);
  EXPECT_THROW(kernel_density({}), std::invalid_argument);
  const std::vector<double> v = {1.0, 2.0};
  EXPECT_THROW(kernel_density(v, 1), std::invalid_argument);
}

TEST(HistogramKde, RejectsNonFiniteInput) {
  // NaN poisons the bin math silently (NaN < lo is false, so the sample
  // lands in a garbage bin) and inf collapses the span; both now fail
  // loudly.
  const std::vector<double> with_nan = {1.0, std::nan(""), 3.0};
  const std::vector<double> with_inf = {1.0, std::numeric_limits<double>::infinity()};
  const std::vector<double> with_ninf = {-std::numeric_limits<double>::infinity(), 1.0};
  EXPECT_THROW(make_histogram(with_nan), std::domain_error);
  EXPECT_THROW(make_histogram(with_inf), std::domain_error);
  EXPECT_THROW(make_histogram(with_ninf), std::domain_error);
  EXPECT_THROW(kernel_density(with_nan), std::domain_error);
  EXPECT_THROW(kernel_density(with_inf), std::domain_error);
  EXPECT_THROW(kernel_density(with_ninf), std::domain_error);
}

TEST(HistogramKde, ThinningEngagesJustPastTheCap) {
  // Regression: stride = n / kMaxSamples floors to 1 for any n in
  // (100k, 200k), so "thinning" copied all n samples into a vector
  // reserved for 100k. The ceil-divide stride actually thins.
  rng::Xoshiro256 gen(9);
  std::vector<double> v;
  v.reserve(150'000);
  for (int i = 0; i < 150'000; ++i) v.push_back(rng::normal(gen, 0.0, 1.0));
  const auto curve = kernel_density(v, 32);
  EXPECT_EQ(curve.x.size(), 32u);
  EXPECT_GT(curve.bandwidth, 0.0);
  double peak = 0.0;
  for (double d : curve.density) peak = std::max(peak, d);
  EXPECT_NEAR(peak, 0.3989, 0.05);  // still looks like a standard normal
}

}  // namespace
}  // namespace sci::stats
