#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "hpl/lu.hpp"
#include "hpl/sim_hpl.hpp"
#include "sim/machine.hpp"
#include "stats/descriptive.hpp"

namespace sci::hpl {
namespace {

TEST(Lu, SolvesKnown2x2) {
  Matrix a(2, 2);
  a(0, 0) = 4.0; a(0, 1) = 3.0;
  a(1, 0) = 6.0; a(1, 1) = 3.0;
  Matrix orig = a;
  const auto lu = lu_factorize(a, 2);
  // b = (10, 12) -> x = (1, 2).
  const auto x = lu_solve(a, lu.pivots, {10.0, 12.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
  EXPECT_LT(scaled_residual(orig, x, {10.0, 12.0}), 16.0);
}

TEST(Lu, PivotingHandlesZeroDiagonal) {
  Matrix a(2, 2);
  a(0, 0) = 0.0; a(0, 1) = 1.0;
  a(1, 0) = 1.0; a(1, 1) = 0.0;
  Matrix orig = a;
  const auto lu = lu_factorize(a, 1);
  const auto x = lu_solve(a, lu.pivots, {5.0, 7.0});
  EXPECT_NEAR(x[0], 7.0, 1e-12);
  EXPECT_NEAR(x[1], 5.0, 1e-12);
}

TEST(Lu, SingularMatrixThrows) {
  Matrix a(3, 3);  // all zeros
  EXPECT_THROW(lu_factorize(a), std::runtime_error);
}

TEST(Lu, NonSquareRejected) {
  Matrix a(3, 4);
  EXPECT_THROW(lu_factorize(a), std::invalid_argument);
}

struct LuCase {
  std::size_t n;
  std::size_t block;
};

class LuSizes : public ::testing::TestWithParam<LuCase> {};

TEST_P(LuSizes, RandomSystemsSolveWithinHplTolerance) {
  const auto [n, block] = GetParam();
  Matrix a(n, n);
  std::vector<double> b;
  fill_linear_system(a, b, 1234 + n);
  Matrix orig = a;
  const auto lu = lu_factorize(a, block);
  const auto x = lu_solve(a, lu.pivots, b);
  // The HPL acceptance criterion.
  EXPECT_LT(scaled_residual(orig, x, b), 16.0);
}

TEST_P(LuSizes, FlopCountMatchesFormula) {
  const auto [n, block] = GetParam();
  Matrix a(n, n);
  std::vector<double> b;
  fill_linear_system(a, b, 99);
  const auto lu = lu_factorize(a, block);
  // The recorded flop count tracks the closed form (pivot-search and
  // reciprocal excluded from both).
  EXPECT_NEAR(static_cast<double>(lu.flops), lu_flop_count(n),
              0.02 * lu_flop_count(n) + 4.0 * n * n);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, LuSizes,
    ::testing::Values(LuCase{16, 4}, LuCase{33, 8}, LuCase{64, 16}, LuCase{100, 32},
                      LuCase{128, 64}, LuCase{150, 150} /* unblocked */,
                      LuCase{150, 1} /* fully unblocked columns */),
    [](const auto& tpi) {
      return "n" + std::to_string(tpi.param.n) + "_b" + std::to_string(tpi.param.block);
    });

TEST(Lu, BlockSizeDoesNotChangeResult) {
  const std::size_t n = 80;
  std::vector<double> x_ref;
  for (std::size_t block : {1, 8, 32, 80}) {
    Matrix a(n, n);
    std::vector<double> b;
    fill_linear_system(a, b, 555);
    const auto lu = lu_factorize(a, block);
    const auto x = lu_solve(a, lu.pivots, b);
    if (x_ref.empty()) {
      x_ref = x;
    } else {
      for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_ref[i], 1e-8);
    }
  }
}

TEST(SimHpl, DeterministicPerSeed) {
  const auto machine = sim::make_daint();
  SimHplConfig cfg;
  cfg.n = 20000;  // small for test speed
  cfg.block = 1000;
  const auto a = simulate_hpl_run(machine, cfg, 7);
  const auto b = simulate_hpl_run(machine, cfg, 7);
  EXPECT_EQ(a.completion_s, b.completion_s);
  const auto c = simulate_hpl_run(machine, cfg, 8);
  EXPECT_NE(a.completion_s, c.completion_s);
}

TEST(SimHpl, Figure1CalibrationBracket) {
  // Paper (Figure 1): 50 runs on 64 nodes of Piz Daint, N = 314k;
  // completion times ~267-337 s, best rate 77.38 Tflop/s of 94.5 peak.
  const auto machine = sim::make_daint();
  const auto runs = simulate_hpl_series(machine, SimHplConfig{}, 50, 2015);
  std::vector<double> t;
  for (const auto& r : runs) t.push_back(r.completion_s);
  EXPECT_GT(stats::min_value(t), 250.0);
  EXPECT_LT(stats::min_value(t), 290.0);
  EXPECT_GT(stats::median(t), 275.0);
  EXPECT_LT(stats::median(t), 315.0);
  EXPECT_LT(stats::max_value(t), 380.0);
  // Best run within ~10% of the paper's 77.38 Tflop/s.
  double best = 0.0;
  for (const auto& r : runs) best = std::max(best, r.gflops / 1000.0);
  EXPECT_GT(best, 70.0);
  EXPECT_LT(best, 85.0);
}

TEST(SimHpl, RightSkewedCompletionTimes) {
  const auto runs = simulate_hpl_series(sim::make_daint(), SimHplConfig{}, 50, 77);
  std::vector<double> t;
  for (const auto& r : runs) t.push_back(r.completion_s);
  EXPECT_GT(stats::skewness(t), 0.0);
}

TEST(SimHpl, CommSmallFractionOfTotal) {
  const auto run = simulate_hpl_run(sim::make_daint(), SimHplConfig{}, 3);
  EXPECT_GT(run.comm_s, 0.0);
  EXPECT_LT(run.comm_s, 0.2 * run.completion_s);
  EXPECT_NEAR(run.completion_s, run.compute_s + run.comm_s, 1e-9);
}

TEST(SimHpl, ConfigValidation) {
  const auto machine = sim::make_daint();
  SimHplConfig bad_grid;
  bad_grid.grid_p = 7;  // 7*8 != 64
  EXPECT_THROW((void)simulate_hpl_run(machine, bad_grid, 1), std::invalid_argument);
  SimHplConfig bad_n;
  bad_n.n = 100;
  bad_n.block = 1024;
  EXPECT_THROW((void)simulate_hpl_run(machine, bad_n, 1), std::invalid_argument);
}

TEST(SimHpl, FlopFormula) {
  EXPECT_NEAR(hpl_flops(314'000), 2.0 / 3.0 * 3.096e16, 0.01 * 2e16);
  EXPECT_GT(hpl_flops(1000), lu_flop_count(1000));  // includes solve term
}

}  // namespace
}  // namespace sci::hpl
