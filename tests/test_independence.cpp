#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/measurement.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"
#include "stats/independence.hpp"

namespace sci::stats {
namespace {

std::vector<double> iid_sample(std::size_t n, std::uint64_t seed) {
  rng::Xoshiro256 gen(seed);
  std::vector<double> v;
  for (std::size_t i = 0; i < n; ++i) v.push_back(rng::normal(gen, 10.0, 1.0));
  return v;
}

/// AR(1) process: strongly autocorrelated.
std::vector<double> ar1_sample(std::size_t n, double phi, std::uint64_t seed) {
  rng::Xoshiro256 gen(seed);
  std::vector<double> v;
  double x = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    x = phi * x + rng::normal(gen);
    v.push_back(x);
  }
  return v;
}

TEST(Autocorrelation, LagZeroIsOne) {
  EXPECT_EQ(autocorrelation(iid_sample(100, 1), 0), 1.0);
}

TEST(Autocorrelation, IidNearZero) {
  const auto v = iid_sample(5000, 2);
  for (std::size_t lag : {1, 2, 5, 10}) {
    EXPECT_NEAR(autocorrelation(v, lag), 0.0, 0.05) << lag;
  }
}

TEST(Autocorrelation, Ar1MatchesPhi) {
  const double phi = 0.7;
  const auto v = ar1_sample(20000, phi, 3);
  EXPECT_NEAR(autocorrelation(v, 1), phi, 0.03);
  EXPECT_NEAR(autocorrelation(v, 2), phi * phi, 0.04);
}

TEST(Autocorrelation, AlternatingSeriesNegative) {
  std::vector<double> v;
  rng::Xoshiro256 gen(4);
  for (int i = 0; i < 1000; ++i) v.push_back((i % 2 ? 1.0 : -1.0) + 0.01 * rng::normal(gen));
  EXPECT_LT(autocorrelation(v, 1), -0.9);
}

TEST(LjungBox, AcceptsIidRejectsAr1) {
  int rejections = 0;
  for (std::uint64_t s = 0; s < 30; ++s) {
    rejections += ljung_box(iid_sample(300, 100 + s)).reject(0.05);
  }
  EXPECT_LE(rejections, 5);
  for (std::uint64_t s = 0; s < 5; ++s) {
    EXPECT_TRUE(ljung_box(ar1_sample(300, 0.6, 200 + s)).reject(0.01));
  }
}

TEST(RunsTest, AcceptsRandomRejectsTrend) {
  int rejections = 0;
  for (std::uint64_t s = 0; s < 30; ++s) {
    rejections += runs_test(iid_sample(200, 300 + s)).reject(0.05);
  }
  EXPECT_LE(rejections, 5);
  // A slow drift produces long runs above/below the median.
  std::vector<double> trend;
  rng::Xoshiro256 gen(5);
  for (int i = 0; i < 200; ++i) trend.push_back(i * 0.1 + rng::normal(gen, 0.0, 0.5));
  EXPECT_TRUE(runs_test(trend).reject(0.01));
}

TEST(EffectiveSampleSize, IidKeepsAlmostAll) {
  const auto v = iid_sample(2000, 6);
  EXPECT_GT(effective_sample_size(v), 1200.0);
}

TEST(EffectiveSampleSize, Ar1Shrinks) {
  // n_eff ~ n (1 - phi) / (1 + phi) for AR(1): phi=0.8 -> ~n/9.
  const auto v = ar1_sample(9000, 0.8, 7);
  const double n_eff = effective_sample_size(v);
  EXPECT_LT(n_eff, 2500.0);
  EXPECT_GT(n_eff, 300.0);
}

TEST(Independence, Validation) {
  const std::vector<double> tiny = {1.0, 2.0};
  EXPECT_THROW((void)autocorrelation(tiny, 5), std::invalid_argument);
  EXPECT_THROW((void)ljung_box(tiny), std::invalid_argument);
  EXPECT_THROW((void)runs_test(tiny), std::invalid_argument);
  EXPECT_THROW((void)effective_sample_size(tiny), std::invalid_argument);
  const std::vector<double> same(20, 3.0);
  EXPECT_THROW((void)runs_test(same), std::invalid_argument);  // all tie the median
}

TEST(SummarizeSeries, FlagsAutocorrelatedMeasurements) {
  // The Rule 5/6 pipeline also diagnoses non-iid series now.
  auto v = ar1_sample(1000, 0.7, 8);
  for (double& x : v) x += 100.0;  // keep positive-ish
  const auto s = core::summarize_series(v);
  ASSERT_TRUE(s.iid_check.has_value());
  EXPECT_FALSE(s.iid_plausible);
  EXPECT_LT(s.effective_n, 500.0);

  const auto good = core::summarize_series(iid_sample(1000, 9));
  EXPECT_TRUE(good.iid_plausible);
  EXPECT_GT(good.effective_n, 500.0);
}

}  // namespace
}  // namespace sci::stats
