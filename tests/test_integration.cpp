// End-to-end integration tests: full pipelines from simulated cluster
// measurement through statistical analysis to rule-audited reports --
// the workflows the paper's figures embody, exercised across module
// boundaries.
#include <gtest/gtest.h>

#include <vector>

#include "core/adaptive.hpp"
#include "core/bounds.hpp"
#include "core/dataset.hpp"
#include "core/plots.hpp"
#include "core/report.hpp"
#include "hpl/sim_hpl.hpp"
#include "sim/machine.hpp"
#include "simmpi/benchmarks.hpp"
#include "stats/compare.hpp"
#include "stats/confidence.hpp"
#include "stats/descriptive.hpp"
#include "stats/normality.hpp"
#include "stats/quantile_regression.hpp"

namespace sci {
namespace {

// The Figure 3 pipeline: measure two systems, establish that the median
// difference is statistically significant, build a fully rule-compliant
// report.
TEST(Integration, TwoSystemComparisonEndToEnd) {
  const auto dora = simmpi::pingpong_latency(sim::make_dora(), 20000, 64, 1);
  const auto pilatus = simmpi::pingpong_latency(sim::make_pilatus(), 20000, 64, 1);

  // Rule 6: diagnose, do not assume -- latencies are not normal.
  EXPECT_TRUE(stats::shapiro_wilk(std::span(dora).first(3000)).reject(0.05));

  // Rule 7: nonparametric significance.
  const std::vector<std::vector<double>> groups = {
      {dora.begin(), dora.end()}, {pilatus.begin(), pilatus.end()}};
  const auto kw = stats::kruskal_wallis(groups);
  EXPECT_TRUE(kw.reject(0.01));

  // Non-overlapping 99% median CIs confirm the same conclusion.
  const auto ci_dora = stats::median_confidence_interval(dora, 0.99);
  const auto ci_pilatus = stats::median_confidence_interval(pilatus, 0.99);
  EXPECT_FALSE(ci_dora.overlaps(ci_pilatus));

  core::Experiment e;
  e.name = "fig3_significance";
  e.set("machines", "dora-sim, pilatus-sim").set("message", "64 B");
  e.add_factor("system", {"dora", "pilatus"});
  e.synchronization_method = "none (two-sided pingpong)";
  e.summary_across_processes = "rank-0 timing";

  core::ReportBuilder builder(e);
  builder.add_series({"dora", "s", {dora.begin(), dora.end()}});
  builder.add_series({"pilatus", "s", {pilatus.begin(), pilatus.end()}});
  builder.declare_units_convention();
  builder.add_comparison("dora", "pilatus", "Kruskal-Wallis", kw.p_value, 0.0);
  const auto net = sim::make_dora().make_network();
  builder.add_bound("dora", "LogGP ideal one-way latency",
                    net.ideal_transfer_time(0, 60, 64));
  builder.add_plot(core::render_box(
      std::vector<core::NamedSeries>{{"dora", {dora.begin(), dora.end()}},
                                     {"pilatus", {pilatus.begin(), pilatus.end()}}},
      {}));

  for (const auto& check : builder.audit()) {
    EXPECT_TRUE(check.satisfied || !check.applicable)
        << "Rule " << check.rule << " failed: " << check.note;
  }
}

// The Figure 4 pipeline: quantile regression finds the crossover that
// median/mean comparison hides.
TEST(Integration, QuantileRegressionFindsCrossover) {
  const auto dora = simmpi::pingpong_latency(sim::make_dora(), 4000, 64, 2);
  const auto pilatus = simmpi::pingpong_latency(sim::make_pilatus(), 4000, 64, 2);

  std::vector<double> y;
  std::vector<std::vector<double>> x;
  // Subsample for LP tractability; keep every 8th observation.
  for (std::size_t i = 0; i < dora.size(); i += 8) {
    y.push_back(dora[i] * 1e6);
    x.push_back({0.0});
    y.push_back(pilatus[i] * 1e6);
    x.push_back({1.0});
  }
  const auto lo = stats::quantile_regression(y, x, 0.05);
  const auto hi = stats::quantile_regression(y, x, 0.95);
  ASSERT_TRUE(lo.converged);
  ASSERT_TRUE(hi.converged);
  // Crossover: Pilatus faster at low quantiles (negative difference),
  // slower at high quantiles (positive difference).
  EXPECT_LT(lo.coefficients[1], 0.0);
  EXPECT_GT(hi.coefficients[1], 0.0);
}

// The Figure 1 pipeline: HPL runs -> dataset -> summary statistics.
TEST(Integration, HplSeriesToDataset) {
  const auto runs = hpl::simulate_hpl_series(sim::make_daint(), hpl::SimHplConfig{}, 20, 3);

  core::Experiment e;
  e.name = "fig1_hpl";
  e.set("machine", "daint-sim (64 nodes)").set("N", "314000");
  core::Dataset ds(e, {"run", "completion_s", "tflops"});
  for (std::size_t i = 0; i < runs.size(); ++i) {
    ds.add_row({static_cast<double>(i), runs[i].completion_s, runs[i].gflops / 1000.0});
  }
  EXPECT_EQ(ds.rows(), 20u);

  const auto summary = core::summarize_series(ds.column("completion_s"));
  EXPECT_FALSE(summary.deterministic);
  EXPECT_GT(summary.median, 270.0);
  EXPECT_LT(summary.median, 330.0);
  ASSERT_TRUE(summary.median_ci.has_value());
}

// The Section 4.2.2 pipeline: adaptive sampling drives a simulated
// measurement until the CI is tight.
TEST(Integration, AdaptiveSamplingOnSimulatedLatency) {
  const auto machine = sim::make_dora();
  // Pre-generate a long series and replay it as the "measurement".
  const auto samples = simmpi::pingpong_latency(machine, 4000, 64, 4);
  std::size_t cursor = 0;
  core::AdaptiveOptions opts;
  opts.relative_error = 0.02;
  opts.max_samples = 3900;
  const auto result = core::measure_adaptive(
      [&] { return samples[cursor++]; }, opts);
  EXPECT_TRUE(result.converged);
  // The converged median must be close to the full-series median.
  EXPECT_NEAR(stats::median(result.samples), stats::median(samples),
              0.05 * stats::median(samples));
}

// Rule 10 pipeline: per-rank reduce timings -> ANOVA across ranks
// decides whether a single summary is legitimate (Figure 6).
TEST(Integration, PerProcessVariationAnova) {
  const auto bench = simmpi::reduce_bench(sim::make_daint(), 16, 100, 5);
  std::vector<std::vector<double>> groups;
  for (int r = 0; r < 16; ++r) groups.push_back(bench.rank_series(r));
  // Ranks play different roles in the binomial tree: timings must differ
  // significantly, exactly the Figure 6 observation.
  const auto anova = stats::one_way_anova(groups);
  EXPECT_TRUE(anova.reject(0.01));
}

// Strong-scaling pipeline with bound models (Figure 7).
TEST(Integration, ScalingAgainstBounds) {
  const auto machine = sim::make_daint();
  const double base_s = 20e-3;
  const double serial_fraction = 0.01;
  const core::ScalingBounds bounds(base_s, serial_fraction,
                                   core::daint_reduction_overhead);
  for (int p : {1, 2, 4, 8, 16, 32}) {
    const auto times = simmpi::pi_scaling_run(machine, p, base_s, serial_fraction, 5, 6);
    const double measured = stats::median(times);
    // Measured time must respect the overhead-extended lower bound
    // (sans the overhead term's own noise): use the Amdahl bound.
    EXPECT_GT(measured, 0.95 * bounds.time_amdahl(p)) << p;
    // And speedup must not exceed ideal.
    EXPECT_LT(base_s / measured, p * 1.05) << p;
  }
}

}  // namespace
}  // namespace sci
