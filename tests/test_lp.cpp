#include <gtest/gtest.h>

#include "lp/simplex.hpp"

namespace sci::lp {
namespace {

// min -x - 2y  s.t.  x + y + s1 = 4, x + 3y + s2 = 6; x,y,s >= 0.
// Optimum at (3, 1): objective -5.
TEST(Simplex, SolvesSmallLp) {
  Problem p(2, 4);
  p.set_objective(0, -1.0);
  p.set_objective(1, -2.0);
  p.set_coefficient(0, 0, 1.0);
  p.set_coefficient(0, 1, 1.0);
  p.set_coefficient(0, 2, 1.0);
  p.set_coefficient(1, 0, 1.0);
  p.set_coefficient(1, 1, 3.0);
  p.set_coefficient(1, 3, 1.0);
  p.set_rhs(0, 4.0);
  p.set_rhs(1, 6.0);

  const auto sol = p.solve();
  ASSERT_EQ(sol.status, Status::kOptimal);
  EXPECT_NEAR(sol.objective, -5.0, 1e-9);
  EXPECT_NEAR(sol.x[0], 3.0, 1e-9);
  EXPECT_NEAR(sol.x[1], 1.0, 1e-9);
}

// x = 2, minimize x: trivially feasible with unique point.
TEST(Simplex, SingleEqualityPinsVariable) {
  Problem p(1, 1);
  p.set_objective(0, 1.0);
  p.set_coefficient(0, 0, 1.0);
  p.set_rhs(0, 2.0);
  const auto sol = p.solve();
  ASSERT_EQ(sol.status, Status::kOptimal);
  EXPECT_NEAR(sol.x[0], 2.0, 1e-9);
  EXPECT_NEAR(sol.objective, 2.0, 1e-9);
}

// x + y = -1 with x,y >= 0 is infeasible (after sign flip: -x - y = 1).
TEST(Simplex, DetectsInfeasible) {
  Problem p(1, 2);
  p.set_coefficient(0, 0, 1.0);
  p.set_coefficient(0, 1, 1.0);
  p.set_rhs(0, -1.0);
  const auto sol = p.solve();
  EXPECT_EQ(sol.status, Status::kInfeasible);
}

// min -x s.t. x - y = 0: x can grow forever with y.
TEST(Simplex, DetectsUnbounded) {
  Problem p(1, 2);
  p.set_objective(0, -1.0);
  p.set_coefficient(0, 0, 1.0);
  p.set_coefficient(0, 1, -1.0);
  p.set_rhs(0, 0.0);
  const auto sol = p.solve();
  EXPECT_EQ(sol.status, Status::kUnbounded);
}

// Negative RHS rows must be handled by the internal sign flip.
TEST(Simplex, NegativeRhsNormalized) {
  // -x - s = -3  <=>  x + s = 3; min x -> x = 0, s = 3.
  Problem p(1, 2);
  p.set_objective(0, 1.0);
  p.set_coefficient(0, 0, -1.0);
  p.set_coefficient(0, 1, -1.0);
  p.set_rhs(0, -3.0);
  const auto sol = p.solve();
  ASSERT_EQ(sol.status, Status::kOptimal);
  EXPECT_NEAR(sol.x[0], 0.0, 1e-9);
  EXPECT_NEAR(sol.x[1], 3.0, 1e-9);
}

// Degenerate problem with a redundant row must still terminate (Bland).
TEST(Simplex, RedundantRowTerminates) {
  Problem p(2, 3);
  p.set_objective(0, 1.0);
  // x + y + z = 2 twice.
  for (std::size_t r = 0; r < 2; ++r) {
    p.set_coefficient(r, 0, 1.0);
    p.set_coefficient(r, 1, 1.0);
    p.set_coefficient(r, 2, 1.0);
    p.set_rhs(r, 2.0);
  }
  const auto sol = p.solve();
  ASSERT_EQ(sol.status, Status::kOptimal);
  EXPECT_NEAR(sol.x[0], 0.0, 1e-9);
  EXPECT_NEAR(sol.objective, 0.0, 1e-9);
}

// Feasibility at equality: x + y = 4, x - y = 2 -> (3, 1).
TEST(Simplex, SolvesSquareSystem) {
  Problem p(2, 2);
  p.set_coefficient(0, 0, 1.0);
  p.set_coefficient(0, 1, 1.0);
  p.set_rhs(0, 4.0);
  p.set_coefficient(1, 0, 1.0);
  p.set_coefficient(1, 1, -1.0);
  p.set_rhs(1, 2.0);
  const auto sol = p.solve();
  ASSERT_EQ(sol.status, Status::kOptimal);
  EXPECT_NEAR(sol.x[0], 3.0, 1e-9);
  EXPECT_NEAR(sol.x[1], 1.0, 1e-9);
}

class SimplexScale : public ::testing::TestWithParam<std::size_t> {};

// min sum x_i s.t. x_i + s_i = i+1: optimum 0 with slack carrying rhs.
TEST_P(SimplexScale, ScalesToLargerProblems) {
  const std::size_t n = GetParam();
  Problem p(n, 2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    p.set_objective(i, 1.0);
    p.set_coefficient(i, i, 1.0);
    p.set_coefficient(i, n + i, 1.0);
    p.set_rhs(i, static_cast<double>(i + 1));
  }
  const auto sol = p.solve();
  ASSERT_EQ(sol.status, Status::kOptimal);
  EXPECT_NEAR(sol.objective, 0.0, 1e-9);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(sol.x[n + i], static_cast<double>(i + 1), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SimplexScale, ::testing::Values(5, 20, 60));

}  // namespace
}  // namespace sci::lp
