#include <gtest/gtest.h>

#include "rng/xoshiro.hpp"
#include "sim/noise.hpp"

namespace sci::sim {
namespace {

TEST(ComputeNoise, ZeroModelIsIdentity) {
  ComputeNoise noise;  // all zeros
  rng::Xoshiro256 gen(1);
  for (double d : {1e-6, 1.0, 100.0}) EXPECT_EQ(noise.perturb(d, gen), d);
}

TEST(ComputeNoise, NeverShortensWork) {
  ComputeNoise noise{.rel_jitter = 0.1,
                     .detour_rate = 1000.0,
                     .detour_mean = 1e-5,
                     .burst_rate = 10.0,
                     .burst_scale = 1e-4,
                     .burst_shape = 2.0};
  rng::Xoshiro256 gen(2);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(noise.perturb(1e-3, gen), 1e-3);
  }
}

TEST(ComputeNoise, DetourCountScalesWithDuration) {
  // Rate semantics: long intervals absorb proportionally more detours.
  ComputeNoise noise{.rel_jitter = 0.0,
                     .detour_rate = 100.0,
                     .detour_mean = 1e-3,
                     .burst_rate = 0.0};
  rng::Xoshiro256 gen(3);
  double short_extra = 0.0, long_extra = 0.0;
  constexpr int kTrials = 3000;
  for (int i = 0; i < kTrials; ++i) {
    short_extra += noise.perturb(0.01, gen) - 0.01;
    long_extra += noise.perturb(1.0, gen) - 1.0;
  }
  // Expected extra: rate * duration * mean => 1e-3 vs 0.1 per call.
  EXPECT_NEAR(short_extra / kTrials, 100.0 * 0.01 * 1e-3, 3e-4);
  EXPECT_NEAR(long_extra / kTrials, 100.0 * 1.0 * 1e-3, 1e-2);
}

TEST(ComputeNoise, JitterScalesMultiplicatively) {
  ComputeNoise noise{.rel_jitter = 0.05};
  rng::Xoshiro256 gen(4);
  double sum = 0.0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) sum += noise.perturb(10.0, gen);
  // E[1 + |N(0,s)|] = 1 + s*sqrt(2/pi).
  EXPECT_NEAR(sum / kTrials, 10.0 * (1.0 + 0.05 * 0.7979), 0.02);
}

TEST(NetworkNoise, ZeroModelIsIdentity) {
  NetworkNoise noise;
  rng::Xoshiro256 gen(5);
  EXPECT_EQ(noise.perturb(1e-6, gen), 1e-6);
}

TEST(NetworkNoise, CongestionFrequencyMatchesProbability) {
  NetworkNoise noise{.rel_jitter = 0.0,
                     .congestion_prob = 0.25,
                     .congestion_mean = 1e-6};
  rng::Xoshiro256 gen(6);
  int congested = 0;
  constexpr int kTrials = 40000;
  for (int i = 0; i < kTrials; ++i) {
    congested += (noise.perturb(1e-6, gen) > 1e-6);
  }
  EXPECT_NEAR(static_cast<double>(congested) / kTrials, 0.25, 0.01);
}

TEST(NetworkNoise, RareEventsProduceHeavyTail) {
  NetworkNoise noise{.rel_jitter = 0.0,
                     .congestion_prob = 0.0,
                     .congestion_mean = 0.0,
                     .rare_prob = 0.01,
                     .rare_scale = 1e-5,
                     .rare_shape = 2.0};
  rng::Xoshiro256 gen(7);
  double max_seen = 0.0;
  for (int i = 0; i < 50000; ++i) max_seen = std::max(max_seen, noise.perturb(1e-6, gen));
  EXPECT_GT(max_seen, 1e-5);  // at least one rare event fired and dominates
}

TEST(Noise, DeterministicGivenGeneratorState) {
  ComputeNoise noise{.rel_jitter = 0.1, .detour_rate = 100.0, .detour_mean = 1e-4};
  rng::Xoshiro256 a(8), b(8);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(noise.perturb(0.5, a), noise.perturb(0.5, b));
}

}  // namespace
}  // namespace sci::sim
