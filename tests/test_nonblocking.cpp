#include <gtest/gtest.h>

#include <vector>

#include "sim/machine.hpp"
#include "simmpi/comm.hpp"

namespace sci::simmpi {
namespace {

TEST(Nonblocking, IsendIrecvRoundTrip) {
  World world(sim::make_noiseless(4), 2, 1);
  std::vector<double> got;
  world.launch_on(0, [](Comm& c) -> sim::Task<void> {
    std::vector<double> payload(1, 42.0);
    Request req = c.isend(1, 5, 8, std::move(payload));
    (void)co_await req.wait();
    EXPECT_TRUE(req.test());
  });
  world.launch_on(1, [&](Comm& c) -> sim::Task<void> {
    Request req = c.irecv(0, 5);
    Message m = co_await req.wait();
    got = m.payload;
    EXPECT_EQ(m.src, 0);
  });
  world.run();
  EXPECT_EQ(got, std::vector<double>(1, 42.0));
}

TEST(Nonblocking, OverlapsCommunicationWithCompute) {
  // With nonblocking ops, a 1 ms compute and a 1 ms-ish transfer overlap;
  // blocking them back-to-back would serialize.
  const auto machine = sim::make_noiseless(4);
  double overlap_finish = 0.0;
  {
    World world(machine, 2, 2);
    world.launch_on(0, [&](Comm& c) -> sim::Task<void> {
      Request req = c.isend(1, 1, 1 << 22);  // 4 MiB: rendezvous + wire time
      co_await c.compute(1e-3);
      (void)co_await req.wait();
    });
    world.launch_on(1, [&](Comm& c) -> sim::Task<void> {
      Request req = c.irecv(0, 1);
      co_await c.compute(1e-3);
      (void)co_await req.wait();
      overlap_finish = c.world().engine().now();
    });
    world.run();
  }
  double serial_finish = 0.0;
  {
    World world(machine, 2, 2);
    world.launch_on(0, [&](Comm& c) -> sim::Task<void> {
      co_await c.compute(1e-3);
      co_await c.send(1, 1, 1 << 22);
    });
    world.launch_on(1, [&](Comm& c) -> sim::Task<void> {
      co_await c.compute(1e-3);
      (void)co_await c.recv(0, 1);
      serial_finish = c.world().engine().now();
    });
    world.run();
  }
  EXPECT_LT(overlap_finish, serial_finish);
}

TEST(Nonblocking, IrecvBeforeSendAndAfter) {
  // Posted-before and unexpected-queue paths both complete.
  World world(sim::make_noiseless(4), 2, 3);
  int completed = 0;
  world.launch_on(0, [&](Comm& c) -> sim::Task<void> {
    (void)co_await c.isend(1, 1, 8).wait();
    co_await c.compute(1e-3);
    (void)co_await c.isend(1, 2, 8).wait();
  });
  world.launch_on(1, [&](Comm& c) -> sim::Task<void> {
    Request early = c.irecv(0, 1);  // posted before arrival
    (void)co_await early.wait();
    ++completed;
    co_await c.compute(5e-3);       // tag-2 message arrives meanwhile
    Request late = c.irecv(0, 2);   // matches from the unexpected queue
    (void)co_await late.wait();
    ++completed;
  });
  world.run();
  EXPECT_EQ(completed, 2);
}

TEST(Nonblocking, WaitAllCompletesEverything) {
  World world(sim::make_daint(), 4, 4);
  bool done = false;
  world.launch_on(0, [&](Comm& c) -> sim::Task<void> {
    std::vector<Request> reqs;
    for (int r = 1; r < c.size(); ++r) reqs.push_back(c.irecv(r, 9));
    co_await wait_all(reqs);
    for (auto& r : reqs) EXPECT_TRUE(r.test());
    done = true;
  });
  for (int r = 1; r < 4; ++r) {
    world.launch_on(r, [](Comm& c) -> sim::Task<void> {
      co_await c.compute(1e-5 * (c.rank() + 1));
      (void)co_await c.isend(0, 9, 8).wait();
    });
  }
  world.run();
  EXPECT_TRUE(done);
}

TEST(Nonblocking, TestReflectsCompletion) {
  World world(sim::make_noiseless(4), 2, 5);
  world.launch_on(0, [](Comm& c) -> sim::Task<void> {
    Request req = c.irecv(1, 1);
    EXPECT_FALSE(req.test());  // nothing sent yet
    co_await c.compute(1e-2);  // sender fires at ~1 ms
    EXPECT_TRUE(req.test());   // already delivered; no wait needed
    Message m = co_await req.wait();
    EXPECT_EQ(m.payload.at(0), 7.0);
  });
  world.launch_on(1, [](Comm& c) -> sim::Task<void> {
    co_await c.compute(1e-3);
    (void)co_await c.isend(0, 1, 8, std::vector<double>(1, 7.0)).wait();
  });
  world.run();
}

TEST(Nonblocking, Validation) {
  World world(sim::make_noiseless(4), 2, 6);
  EXPECT_THROW((void)world.comm(0).isend(7, 0, 8), std::out_of_range);
  EXPECT_THROW((void)world.comm(0).irecv(-5, 0), std::out_of_range);
  Request empty;
  EXPECT_FALSE(empty.test());
}

TEST(Torus, HopDistances) {
  const sim::Torus3D torus(4, 4, 4);
  EXPECT_EQ(torus.node_count(), 64u);
  EXPECT_EQ(torus.hops(0, 0), 0u);
  EXPECT_EQ(torus.hops(0, 1), 1u);   // +x
  EXPECT_EQ(torus.hops(0, 3), 1u);   // wrap-around -x
  EXPECT_EQ(torus.hops(0, 2), 2u);   // +x twice
  EXPECT_EQ(torus.hops(0, 4), 1u);   // +y
  EXPECT_EQ(torus.hops(0, 16), 1u);  // +z
  EXPECT_EQ(torus.hops(0, 21), 3u);  // (1,1,1)
  // Maximum distance in a 4-ring is 2 per dimension.
  EXPECT_EQ(torus.hops(0, 42), 6u);  // (2,2,2)
  EXPECT_THROW((void)torus.hops(0, 64), std::out_of_range);
}

TEST(Torus, Symmetric) {
  const sim::Torus3D torus(3, 5, 2);
  EXPECT_EQ(torus.node_count(), 30u);
  for (std::size_t a = 0; a < 30; ++a) {
    for (std::size_t b = 0; b < 30; ++b) {
      EXPECT_EQ(torus.hops(a, b), torus.hops(b, a));
    }
  }
}

}  // namespace
}  // namespace sci::simmpi
