#include <gtest/gtest.h>

#include <vector>

#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"
#include "stats/normality.hpp"

namespace sci::stats {
namespace {

std::vector<double> normal_sample(std::size_t n, std::uint64_t seed) {
  rng::Xoshiro256 gen(seed);
  std::vector<double> v;
  v.reserve(n);
  for (std::size_t i = 0; i < n; ++i) v.push_back(rng::normal(gen, 10.0, 2.0));
  return v;
}

std::vector<double> lognormal_sample(std::size_t n, std::uint64_t seed) {
  rng::Xoshiro256 gen(seed);
  std::vector<double> v;
  v.reserve(n);
  for (std::size_t i = 0; i < n; ++i) v.push_back(rng::lognormal(gen, 0.0, 1.0));
  return v;
}

TEST(ShapiroWilk, AcceptsNormalData) {
  // Type-I error control: normal samples should rarely be rejected.
  int rejections = 0;
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    rejections += shapiro_wilk(normal_sample(200, seed)).reject(0.05);
  }
  EXPECT_LE(rejections, 6);  // ~5% expected, allow slack
}

TEST(ShapiroWilk, RejectsLognormalData) {
  // Power check: clearly skewed data must be rejected essentially always.
  for (std::uint64_t seed = 100; seed < 110; ++seed) {
    EXPECT_TRUE(shapiro_wilk(lognormal_sample(200, seed)).reject(0.05)) << seed;
  }
}

TEST(ShapiroWilk, WStatisticNearOneForNormal) {
  const auto r = shapiro_wilk(normal_sample(500, 7));
  EXPECT_GT(r.statistic, 0.99);
  EXPECT_LE(r.statistic, 1.0);
}

TEST(ShapiroWilk, SmallSampleBranch) {
  // n <= 11 uses a different p-value transform; sanity only.
  const auto r = shapiro_wilk(normal_sample(8, 3));
  EXPECT_GT(r.statistic, 0.6);
  EXPECT_GE(r.p_value, 0.0);
  EXPECT_LE(r.p_value, 1.0);
}

TEST(ShapiroWilk, RejectsDomainViolations) {
  EXPECT_THROW((void)shapiro_wilk(std::vector<double>{1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW((void)shapiro_wilk(std::vector<double>(3, 5.0)), std::invalid_argument);
  EXPECT_THROW((void)shapiro_wilk(normal_sample(5001, 1)), std::invalid_argument);
}

TEST(AndersonDarling, AcceptsNormalRejectsSkewed) {
  int rejections = 0;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    rejections += anderson_darling(normal_sample(300, seed)).reject(0.05);
  }
  EXPECT_LE(rejections, 4);
  for (std::uint64_t seed = 50; seed < 55; ++seed) {
    EXPECT_TRUE(anderson_darling(lognormal_sample(300, seed)).reject(0.05));
  }
}

TEST(JarqueBera, AcceptsNormalRejectsSkewed) {
  int rejections = 0;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    rejections += jarque_bera(normal_sample(500, seed)).reject(0.05);
  }
  EXPECT_LE(rejections, 4);
  for (std::uint64_t seed = 70; seed < 75; ++seed) {
    EXPECT_TRUE(jarque_bera(lognormal_sample(500, seed)).reject(0.05));
  }
}

TEST(QQPlot, PointsSortedAndSized) {
  const auto v = lognormal_sample(1000, 9);
  const auto pts = qq_normal(v, 128);
  EXPECT_EQ(pts.size(), 128u);
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_GE(pts[i].theoretical, pts[i - 1].theoretical);
    EXPECT_GE(pts[i].sample, pts[i - 1].sample);
  }
}

TEST(QQPlot, FullResolutionWhenSmall) {
  const auto v = normal_sample(50, 10);
  EXPECT_EQ(qq_normal(v, 128).size(), 50u);
}

TEST(QQCorrelation, DiscriminatesShapes) {
  const double r_normal = qq_correlation(normal_sample(1000, 11));
  const double r_skewed = qq_correlation(lognormal_sample(1000, 11));
  EXPECT_GT(r_normal, 0.995);
  EXPECT_LT(r_skewed, r_normal);
  EXPECT_LT(r_skewed, 0.97);
}

class ShapiroWilkSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ShapiroWilkSizes, ValidPValueAcrossSizes) {
  const auto r = shapiro_wilk(normal_sample(GetParam(), 21));
  EXPECT_GE(r.p_value, 0.0);
  EXPECT_LE(r.p_value, 1.0);
  EXPECT_GT(r.statistic, 0.5);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ShapiroWilkSizes,
                         ::testing::Values(3, 4, 5, 11, 12, 30, 100, 1000, 5000));

}  // namespace
}  // namespace sci::stats
