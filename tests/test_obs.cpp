#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "core/adaptive.hpp"
#include "core/dataset.hpp"
#include "core/experiment.hpp"
#include "core/report.hpp"
#include "obs/counters.hpp"
#include "obs/provenance.hpp"
#include "obs/trace.hpp"
#include "obs/trace_read.hpp"
#include "sim/machine.hpp"
#include "simmpi/collectives.hpp"
#include "simmpi/comm.hpp"

namespace sci::obs {
namespace {

// ---------------------------------------------------------------- sink

TEST(TraceSink, CollectsAndSerializesEvents) {
  TraceSink sink;
  sink.set_track_name(0, "rank 0");
  sink.complete(0, "send", "p2p", 1e-6, 2e-6, {{"dst", 1}, {"bytes", 8}});
  sink.instant(0, "noise", "noise", 2e-6);
  sink.counter(990, "queue_depth", 0.0, 4.0);
  EXPECT_EQ(sink.size(), 3u);

  const ParsedTrace trace = parse_trace(sink.to_json());
  ASSERT_EQ(trace.events.size(), 3u);
  EXPECT_EQ(trace.events[0].phase, 'X');
  EXPECT_EQ(trace.events[0].name, "send");
  EXPECT_DOUBLE_EQ(trace.events[0].arg("dst"), 1.0);
  EXPECT_NEAR(trace.events[0].ts_s, 1e-6, 1e-12);
  EXPECT_NEAR(trace.events[0].dur_s, 2e-6, 1e-12);
  EXPECT_EQ(trace.events[1].phase, 'i');
  EXPECT_EQ(trace.events[2].phase, 'C');
  EXPECT_EQ(trace.track_names.at(0), "rank 0");
}

TEST(TraceSink, UnattachedMacrosEmitNothing) {
  detach();
  EXPECT_FALSE(SCI_TRACE_ATTACHED());
  // Must be a no-op, not a crash.
  SCI_TRACE_COMPLETE(0, "x", "c", 0.0, 1.0);
  SCI_TRACE_INSTANT(0, "x", "c", 0.0);
  SCI_TRACE_COUNTER(0, "x", 0.0, 1.0);
}

#if SCIBENCH_TRACING
TEST(TraceSink, ScopedAttachRestoresPrevious) {
  TraceSink outer_sink;
  ScopedAttach outer(outer_sink);
  {
    TraceSink inner_sink;
    ScopedAttach inner(inner_sink);
    SCI_TRACE_INSTANT(0, "inner", "t", 0.0);
    EXPECT_EQ(inner_sink.size(), 1u);
  }
  SCI_TRACE_INSTANT(0, "outer", "t", 0.0);
  EXPECT_EQ(outer_sink.size(), 1u);
}
#endif  // SCIBENCH_TRACING

TEST(TraceSink, ParserRejectsMalformedJson) {
  EXPECT_THROW((void)parse_trace(std::string("{")), std::runtime_error);
  EXPECT_THROW((void)parse_trace(std::string("[1,2")), std::runtime_error);
  // Schema: an X event without required keys is an error.
  EXPECT_THROW((void)parse_trace(std::string(
                   R"({"traceEvents":[{"ph":"X","name":"a"}]})")),
               std::runtime_error);
}

// ------------------------------------------------------------- counters

TEST(Counters, RegistryAddsAndSnapshots) {
  CounterRegistry::instance().reset_all();
  counter("test.alpha").add(3);
  counter("test.alpha").add(2);
  counter("test.hwm").set_max(7);
  counter("test.hwm").set_max(4);  // lower: no effect

  const auto snap = CounterRegistry::instance().snapshot();
  EXPECT_EQ(snapshot_value(snap, "test.alpha"), 5u);
  EXPECT_EQ(snapshot_value(snap, "test.hwm"), 7u);
  EXPECT_EQ(snapshot_value(snap, "test.missing"), 0u);
  EXPECT_TRUE(std::is_sorted(snap.begin(), snap.end()));
}

TEST(Counters, SnapshotDeltaDropsZeroEntries) {
  CounterRegistry::instance().reset_all();
  const auto before = CounterRegistry::instance().snapshot();
  counter("test.delta").add(4);
  const auto delta = snapshot_delta(before, CounterRegistry::instance().snapshot());
  EXPECT_EQ(snapshot_value(delta, "test.delta"), 4u);
  for (const auto& [name, value] : delta) EXPECT_NE(value, 0u) << name;
}

// ----------------------------------------------- simulator integration

simmpi::World make_reduce_world(int ranks, std::uint64_t seed) {
  return simmpi::World(sim::make_dora(), ranks, seed);
}

std::string traced_reduce_json(int ranks, std::uint64_t seed) {
  TraceSink sink;
  simmpi::World world = make_reduce_world(ranks, seed);
  world.name_trace_tracks(sink);
  ScopedAttach attach(sink);
  world.launch([](simmpi::Comm& c) -> sim::Task<void> {
    (void)co_await simmpi::reduce(c, static_cast<double>(c.rank() + 1), 0);
  });
  world.run();
  TraceSink::WriteOptions options;
  options.wallclock_metadata = false;  // byte-stable output
  return sink.to_json(options);
}

// The remaining SimTrace/HarnessTrace cases assert on *emitted* spans,
// which only exist when the instrumentation is compiled in.
#if SCIBENCH_TRACING
TEST(SimTrace, SixteenRankReduceEmitsSchemaValidTrace) {
  const int p = 16;
  const ParsedTrace trace = parse_trace(traced_reduce_json(p, 42));

  // One named track per rank.
  const auto ranks = trace.rank_tracks();
  ASSERT_EQ(ranks.size(), static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    EXPECT_EQ(trace.track_names.at(ranks[static_cast<std::size_t>(r)]),
              "rank " + std::to_string(r));
  }

  // Every rank has a reduce span; every non-root rank sent exactly once
  // in a binomial tree, and each send has a matching recv (paired by
  // mseq) plus a wire span.
  int reduce_spans = 0, sends = 0, recvs = 0, wires = 0;
  std::vector<double> send_seqs, recv_seqs;
  for (const auto& ev : trace.events) {
    if (ev.phase != 'X') continue;
    if (ev.name == "reduce") ++reduce_spans;
    if (ev.name == "send") {
      ++sends;
      send_seqs.push_back(ev.arg("mseq", -1.0));
    }
    if (ev.name == "recv") {
      ++recvs;
      recv_seqs.push_back(ev.arg("mseq", -1.0));
      EXPECT_TRUE(ev.has_arg("wait_s"));
      EXPECT_TRUE(ev.has_arg("src"));
    }
    if (ev.name == "wire") ++wires;
  }
  EXPECT_EQ(reduce_spans, p);
  EXPECT_EQ(sends, p - 1);  // binomial tree: every rank but the root sends once
  EXPECT_EQ(recvs, p - 1);
  EXPECT_EQ(wires, p - 1);
  std::sort(send_seqs.begin(), send_seqs.end());
  std::sort(recv_seqs.begin(), recv_seqs.end());
  EXPECT_EQ(send_seqs, recv_seqs);  // exact send<->recv correlation

  // The engine contributed its run span and queue-depth samples.
  bool engine_run = false, queue_counter = false;
  for (const auto& ev : trace.events) {
    if (ev.phase == 'X' && ev.name == "run") engine_run = true;
    if (ev.phase == 'C' && ev.name == "queue_depth") queue_counter = true;
  }
  EXPECT_TRUE(engine_run);
  EXPECT_TRUE(queue_counter);
}

TEST(SimTrace, SeededRunsAreByteIdentical) {
  const std::string a = traced_reduce_json(16, 7);
  const std::string b = traced_reduce_json(16, 7);
  EXPECT_EQ(a, b);
  // A different seed perturbs the noise draws and must show up.
  const std::string c = traced_reduce_json(16, 8);
  EXPECT_NE(a, c);
}

TEST(SimTrace, BreakdownCoversEveryRank) {
  const ParsedTrace trace = parse_trace(traced_reduce_json(8, 3));
  const auto ranks = per_rank_breakdown(trace);
  ASSERT_GE(ranks.size(), 8u);
  for (const auto& r : ranks) {
    EXPECT_GE(r.makespan_s, r.busy_s - 1e-12);
    EXPECT_NEAR(r.makespan_s - r.busy_s, r.idle_s, 1e-9);
    EXPECT_FALSE(r.by_name.empty());
  }
}

TEST(SimTrace, CriticalPathEndsAtMakespanAndHopsAcrossRanks) {
  const ParsedTrace trace = parse_trace(traced_reduce_json(16, 5));
  const auto path = critical_path(trace);
  ASSERT_FALSE(path.empty());

  double last_p2p_end = 0.0;
  for (const auto& ev : trace.events) {
    if (ev.phase == 'X' && ev.cat == "p2p") last_p2p_end = std::max(last_p2p_end, ev.end_s());
  }
  EXPECT_NEAR(path.back().end_s, last_p2p_end, 1e-12);

  // Completion times are monotone along the dependence chain (a recv
  // span can *start* before its matching send -- that is the late-sender
  // wait -- but can only finish after it). The reduce tree also forces
  // the path through more than one rank.
  for (std::size_t i = 1; i < path.size(); ++i) {
    EXPECT_LE(path[i - 1].end_s, path[i].end_s + 1e-12);
  }
  std::vector<int> tids;
  for (const auto& seg : path) tids.push_back(seg.tid);
  std::sort(tids.begin(), tids.end());
  tids.erase(std::unique(tids.begin(), tids.end()), tids.end());
  EXPECT_GT(tids.size(), 1u);
}

TEST(SimTrace, LateSendersAttributeReceiverBlockTime) {
  const ParsedTrace trace = parse_trace(traced_reduce_json(16, 11));
  const auto senders = late_senders(trace);
  // In a reduce over a noisy machine some receiver blocks on some sender.
  ASSERT_FALSE(senders.empty());
  double prev = senders.front().blocked_s;
  for (const auto& s : senders) {
    EXPECT_GE(s.src_rank, 0);
    EXPECT_GT(s.waits, 0u);
    EXPECT_LE(s.blocked_s, prev + 1e-12);  // sorted, worst offender first
    prev = s.blocked_s;
  }
}

#endif  // SCIBENCH_TRACING

// Counters are compiled unconditionally -- they must tally even in a
// tracing-off build.
TEST(SimTrace, CountersTallyTrafficAndNoise) {
  CounterRegistry::instance().reset_all();
  const auto before = CounterRegistry::instance().snapshot();
  (void)traced_reduce_json(16, 42);
  const auto delta =
      snapshot_delta(before, CounterRegistry::instance().snapshot());
  EXPECT_EQ(snapshot_value(delta, keys::kNetMessages), 15u);
  EXPECT_GT(snapshot_value(delta, keys::kNetBytes), 0u);
  EXPECT_GT(snapshot_value(delta, keys::kEngineEvents), 0u);
  EXPECT_GT(snapshot_value(delta, keys::kEngineQueueHwm), 0u);
  EXPECT_GT(snapshot_value(delta, keys::kNoiseDraws), 0u);
}

// ------------------------------------------------- harness integration

#if SCIBENCH_TRACING
TEST(HarnessTrace, MeasureAdaptiveEmitsSampleSpansAndCiChecks) {
  TraceSink sink;
  ScopedAttach attach(sink);
  core::AdaptiveOptions options;
  options.min_samples = 10;
  options.max_samples = 20;
  options.warmup = 0;
  options.check_every = 5;
  int calls = 0;
  const auto result = core::measure_adaptive([&] { return 1.0 + 1e-4 * (++calls % 3); },
                                             options);
  ASSERT_FALSE(result.samples.empty());

  const ParsedTrace trace = parse_trace(sink.to_json());
  int samples = 0, ci_checks = 0, adaptive_spans = 0;
  for (const auto& ev : trace.events) {
    if (ev.tid != kHarnessTrack) continue;
    if (ev.phase == 'X' && ev.name == "sample") ++samples;
    if (ev.phase == 'X' && ev.name == "measure_adaptive") ++adaptive_spans;
    if (ev.phase == 'i' && ev.name == "ci_check") ++ci_checks;
  }
  EXPECT_EQ(samples, static_cast<int>(result.samples.size()));
  EXPECT_EQ(adaptive_spans, 1);
  EXPECT_GE(ci_checks, 1);
}
#endif  // SCIBENCH_TRACING

TEST(HarnessTrace, AdaptiveBumpsHarnessCounters) {
  CounterRegistry::instance().reset_all();
  const auto before = CounterRegistry::instance().snapshot();
  core::AdaptiveOptions options;
  options.min_samples = 10;
  options.max_samples = 15;
  options.warmup = 0;
  (void)core::measure_adaptive([] { return 1.0; }, options);
  const auto delta =
      snapshot_delta(before, CounterRegistry::instance().snapshot());
  EXPECT_GE(snapshot_value(delta, keys::kHarnessSamples), 10u);
  EXPECT_GE(snapshot_value(delta, keys::kCiRecomputes), 1u);
}

// ------------------------------------------------------------ provenance

TEST(Provenance, ProbeDeltasAndDatasetRoundtrip) {
  CounterRegistry::instance().reset_all();
  core::Experiment e;
  e.name = "prov-test";
  core::Dataset ds(e, {"time_s"});
  ds.enable_provenance();
  ASSERT_TRUE(ds.provenance_enabled());

  SampleProbe probe;
  probe.begin(/*trace_id=*/7);
  counter(keys::kNetMessages).add(3);
  counter(keys::kNetBytes).add(24);
  const SampleProvenance prov = probe.end();
  EXPECT_EQ(prov.trace_id, 7u);
  EXPECT_EQ(prov.messages, 3u);
  EXPECT_EQ(prov.bytes, 24u);
  ds.add_row({0.5}, prov);

  std::ostringstream os;
  ds.write_csv(os);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("prov_trace_id"), std::string::npos);
  EXPECT_NE(csv.find("prov_messages"), std::string::npos);

  EXPECT_EQ(ds.column("prov_trace_id").at(0), 7.0);
  EXPECT_EQ(ds.column("prov_messages").at(0), 3.0);
  EXPECT_EQ(ds.column("prov_bytes").at(0), 24.0);
}

TEST(Provenance, MixedAddRowArityIsChecked) {
  core::Experiment e;
  e.name = "prov-arity";
  core::Dataset ds(e, {"a", "b"});
  ds.enable_provenance();
  EXPECT_THROW(ds.add_row({1.0, 2.0}), std::invalid_argument);  // needs prov cells
  EXPECT_THROW(ds.add_row({1.0}, SampleProvenance{}), std::invalid_argument);
  ds.add_row({1.0, 2.0}, SampleProvenance{});
  EXPECT_EQ(ds.rows(), 1u);

  core::Dataset plain(e, {"a"});
  plain.add_row({1.0});
  EXPECT_THROW(plain.enable_provenance(), std::logic_error);
  EXPECT_THROW(plain.add_row({1.0}, SampleProvenance{}), std::logic_error);
}

TEST(Provenance, ReportEmbedsCounterSummary) {
  core::Experiment e;
  e.name = "ctr-report";
  core::ReportBuilder report(e);
  report.add_series({"t", "s", {1.0, 1.1, 1.2, 1.05, 1.15, 1.08}});
  report.set_counter_summary({{"net.messages", 15}, {"net.bytes", 120}});
  const std::string text = report.render();
  EXPECT_NE(text.find("provenance counters"), std::string::npos);
  EXPECT_NE(text.find("net.messages = 15"), std::string::npos);
  // The footer is sorted by counter name regardless of insertion order,
  // so reports diff cleanly across runs that assemble counters
  // differently.
  EXPECT_LT(text.find("net.bytes"), text.find("net.messages"));
  const std::string md = report.render_markdown();
  EXPECT_NE(md.find("Provenance counters"), std::string::npos);
  EXPECT_NE(md.find("`net.bytes` | 120"), std::string::npos);
  EXPECT_LT(md.find("net.bytes"), md.find("net.messages"));
}

}  // namespace
}  // namespace sci::obs
