// stats::OnlineSeries -- the streaming accumulator behind sequential
// stopping -- differentially tested against the batch estimators it
// mirrors. The contract is bit-identical agreement: the campaign
// runner's stop decisions must not depend on whether a statistic was
// computed incrementally or over the full vector.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "rng/xoshiro.hpp"
#include "stats/confidence.hpp"
#include "stats/descriptive.hpp"
#include "stats/independence.hpp"
#include "stats/online.hpp"

namespace sci::stats {
namespace {

/// Deterministic test stream: AR(1)-ish positive values with enough
/// autocorrelation that the ESS path is exercised nontrivially.
std::vector<double> make_stream(std::size_t n, std::uint64_t seed, double rho = 0.6) {
  std::vector<double> xs;
  xs.reserve(n);
  std::uint64_t state = seed;
  double prev = 100.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double u =
        static_cast<double>(rng::splitmix64_next(state) >> 11) * 0x1.0p-53;
    prev = rho * prev + (1.0 - rho) * (90.0 + 20.0 * u);
    xs.push_back(prev);
  }
  return xs;
}

TEST(OnlineSeries, MomentsMatchBatch) {
  const auto xs = make_stream(257, 17);
  OnlineSeries acc;
  for (double x : xs) acc.add(x);
  EXPECT_EQ(acc.count(), xs.size());
  EXPECT_NEAR(acc.mean(), arithmetic_mean(xs), 1e-12);
  EXPECT_NEAR(acc.variance(), sample_variance(xs), 1e-10);
  EXPECT_DOUBLE_EQ(acc.min(), min_value(xs));
  EXPECT_DOUBLE_EQ(acc.max(), max_value(xs));
}

TEST(OnlineSeries, QuantilesBitIdenticalToBatch) {
  const auto xs = make_stream(123, 3);
  OnlineSeries acc;
  acc.add(std::span<const double>(xs));
  for (double p : {0.0, 0.1, 0.5, 0.9, 0.99, 1.0}) {
    // Bit-identical, not approximately equal: both paths must sort the
    // same values and run the same interpolation.
    EXPECT_EQ(acc.quantile(p), quantile(xs, p)) << "p=" << p;
  }
}

TEST(OnlineSeries, RankCiBitIdenticalToBatch) {
  for (std::size_t n : {6u, 7u, 25u, 100u, 313u}) {
    const auto xs = make_stream(n, 41 + n);
    OnlineSeries acc;
    for (double x : xs) acc.add(x);
    for (double p : {0.5, 0.9}) {
      const Interval batch = quantile_confidence_interval(xs, p, 0.95);
      const Interval online = acc.quantile_ci(p, 0.95);
      EXPECT_EQ(online.lower, batch.lower) << "n=" << n << " p=" << p;
      EXPECT_EQ(online.upper, batch.upper) << "n=" << n << " p=" << p;
    }
  }
}

TEST(OnlineSeries, ConvergenceDecisionMatchesBatchPredicate) {
  // The decision the campaign runner actually takes, swept across
  // stream lengths: any divergence here would make sequential stopping
  // depend on the code path, not the data.
  const auto xs = make_stream(400, 99);
  OnlineSeries acc;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    acc.add(xs[i]);
    const std::span<const double> prefix(xs.data(), i + 1);
    for (double rel : {0.0005, 0.005, 0.05}) {
      const bool batch = i + 1 > 5 && quantile_ci_converged(prefix, 0.5, rel, 0.95);
      EXPECT_EQ(acc.quantile_converged(0.5, rel, 0.95), batch)
          << "n=" << i + 1 << " rel=" << rel;
    }
  }
}

TEST(OnlineSeries, AutocorrelationMatchesBatchWithinLagWindow) {
  const auto xs = make_stream(200, 7);
  OnlineSeries acc(16);
  for (double x : xs) acc.add(x);
  for (std::size_t lag = 0; lag <= 16; ++lag) {
    // The streaming covariance is algebraically rearranged, so allow
    // floating-point noise -- but only that.
    EXPECT_NEAR(acc.autocorrelation(lag), autocorrelation(xs, lag), 1e-9)
        << "lag=" << lag;
  }
  EXPECT_THROW((void)acc.autocorrelation(17), std::invalid_argument);
}

TEST(OnlineSeries, EffectiveSampleSizeMatchesBatch) {
  for (double rho : {0.0, 0.4, 0.9}) {
    const auto xs = make_stream(300, 5, rho);
    OnlineSeries acc(100);
    for (double x : xs) acc.add(x);
    EXPECT_NEAR(acc.effective_sample_size(), effective_sample_size(xs, 100),
                1e-6 * static_cast<double>(xs.size()))
        << "rho=" << rho;
  }
}

TEST(OnlineSeries, RelativeCiHalfWidthContract) {
  OnlineSeries acc;
  // Too few points: infinitely wide, never "converged".
  for (double x : {3.0, 1.0, 2.0}) acc.add(x);
  EXPECT_TRUE(std::isinf(acc.relative_ci_half_width(0.5)));
  EXPECT_FALSE(acc.quantile_converged(0.5, 0.5));
  // A tight cluster converges at a loose tolerance.
  for (double x : {2.0, 2.0, 2.0, 2.0, 2.0, 2.0, 2.0, 2.0}) acc.add(x);
  EXPECT_TRUE(acc.quantile_converged(0.5, 0.5));
  EXPECT_LT(acc.relative_ci_half_width(0.5), 0.51);
}

TEST(OnlineSeries, InterleavedBulkAndScalarAddsAgree) {
  const auto xs = make_stream(97, 23);
  OnlineSeries scalar;
  OnlineSeries bulk;
  for (double x : xs) scalar.add(x);
  bulk.add(std::span<const double>(xs.data(), 40));
  bulk.add(xs[40]);
  bulk.add(std::span<const double>(xs.data() + 41, xs.size() - 41));
  EXPECT_EQ(bulk.count(), scalar.count());
  EXPECT_EQ(bulk.quantile(0.5), scalar.quantile(0.5));
  EXPECT_EQ(bulk.quantile_ci(0.5).lower, scalar.quantile_ci(0.5).lower);
  EXPECT_NEAR(bulk.effective_sample_size(), scalar.effective_sample_size(), 1e-9);
}

TEST(OnlineSeries, RejectsZeroLagWindow) {
  EXPECT_THROW(OnlineSeries(0), std::invalid_argument);
}

}  // namespace
}  // namespace sci::stats
