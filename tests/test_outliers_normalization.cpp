#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"
#include "stats/descriptive.hpp"
#include "stats/normality.hpp"
#include "stats/normalization.hpp"
#include "stats/outliers.hpp"

namespace sci::stats {
namespace {

TEST(Tukey, FencesMatchDefinition) {
  std::vector<double> v;
  for (int i = 1; i <= 12; ++i) v.push_back(i);  // q1 = 3.75, q3 = 9.25 (R7)
  const auto f = tukey_fences(v, 1.5);
  const double q1 = quantile(v, 0.25);
  const double q3 = quantile(v, 0.75);
  EXPECT_NEAR(f.lower, q1 - 1.5 * (q3 - q1), 1e-12);
  EXPECT_NEAR(f.upper, q3 + 1.5 * (q3 - q1), 1e-12);
}

TEST(Tukey, RemovalCountsReported) {
  std::vector<double> v = {5, 6, 7, 8, 9, 10, 11, 12, 1000, -1000};
  const auto r = remove_outliers_tukey(v);
  EXPECT_EQ(r.removed_high, 1u);
  EXPECT_EQ(r.removed_low, 1u);
  EXPECT_EQ(r.removed(), 2u);
  EXPECT_EQ(r.kept.size(), 8u);
}

TEST(Tukey, LargerConstantKeepsMore) {
  rng::Xoshiro256 gen(1);
  std::vector<double> v;
  for (int i = 0; i < 2000; ++i) v.push_back(rng::lognormal(gen, 0.0, 1.0));
  const auto strict = remove_outliers_tukey(v, 1.5);
  const auto loose = remove_outliers_tukey(v, 3.0);
  EXPECT_GT(strict.removed(), loose.removed());
}

TEST(Tukey, CleanDataUntouched) {
  const std::vector<double> v = {1, 2, 3, 4, 5};
  EXPECT_EQ(remove_outliers_tukey(v).removed(), 0u);
}

TEST(BlockMeans, ValuesAndTruncation) {
  const std::vector<double> v = {1, 2, 3, 4, 5, 6, 7};  // k=3: two blocks
  const auto b = block_means(v, 3);
  ASSERT_EQ(b.size(), 2u);
  EXPECT_NEAR(b[0], 2.0, 1e-12);
  EXPECT_NEAR(b[1], 5.0, 1e-12);
  EXPECT_THROW(block_means(v, 0), std::domain_error);
}

TEST(LogTransform, ValuesAndDomain) {
  const std::vector<double> v = {1.0, std::exp(1.0)};
  const auto t = log_transform(v);
  EXPECT_NEAR(t[0], 0.0, 1e-12);
  EXPECT_NEAR(t[1], 1.0, 1e-12);
  EXPECT_THROW(log_transform(std::vector<double>{1.0, 0.0}), std::domain_error);
}

TEST(LogAverage, EqualsGeometricMean) {
  rng::Xoshiro256 gen(2);
  std::vector<double> v;
  for (int i = 0; i < 100; ++i) v.push_back(rng::lognormal(gen, 0.0, 1.0));
  EXPECT_NEAR(log_average(v), geometric_mean(v), 1e-12);
}

TEST(Normalization, LognormalDataNormalizesUnderLog) {
  // The paper's Figure 2(b): log of lognormal is normal.
  rng::Xoshiro256 gen(3);
  std::vector<double> v;
  for (int i = 0; i < 2000; ++i) v.push_back(rng::lognormal(gen, 1.0, 0.8));
  EXPECT_TRUE(shapiro_wilk(v).reject(0.05));
  EXPECT_FALSE(shapiro_wilk(log_transform(v)).reject(0.01));
}

TEST(Normalization, BlockMeansApproachNormality) {
  // CLT (the paper's Figure 2(c,d)): means of k samples normalize.
  rng::Xoshiro256 gen(4);
  std::vector<double> v;
  for (int i = 0; i < 100000; ++i) v.push_back(rng::exponential(gen, 1.0));
  EXPECT_TRUE(shapiro_wilk(std::span(v).first(3000)).reject(0.05));
  const auto b100 = block_means(v, 100);
  EXPECT_FALSE(shapiro_wilk(b100).reject(0.01));
}

TEST(Normalization, FindBlockSizeReturnsWorkingK) {
  rng::Xoshiro256 gen(5);
  std::vector<double> v;
  for (int i = 0; i < 60000; ++i) v.push_back(rng::exponential(gen, 2.0));
  const std::vector<std::size_t> candidates = {1, 10, 100, 1000};
  const std::size_t k = find_normalizing_block_size(v, candidates);
  EXPECT_GT(k, 1u);  // raw exponential data is not normal
  // Verify the returned k indeed passes.
  EXPECT_FALSE(shapiro_wilk(block_means(v, k)).reject(0.05));
}

TEST(Normalization, ReturnsZeroWhenNothingWorks) {
  // Too few samples for any candidate to yield >= 8 blocks that pass.
  rng::Xoshiro256 gen(6);
  std::vector<double> v;
  for (int i = 0; i < 50; ++i) v.push_back(rng::pareto(gen, 1.0, 1.1));
  const std::vector<std::size_t> candidates = {25};  // 2 blocks only
  EXPECT_EQ(find_normalizing_block_size(v, candidates), 0u);
}

}  // namespace
}  // namespace sci::stats
