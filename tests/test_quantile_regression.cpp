#include <gtest/gtest.h>

#include <vector>

#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"
#include "stats/descriptive.hpp"
#include "stats/quantile_regression.hpp"

namespace sci::stats {
namespace {

TEST(QuantReg, InterceptOnlyEqualsSampleQuantile) {
  // With no regressors, the tau-quantile-regression intercept is a
  // tau-quantile of y (any minimizer of the check loss).
  rng::Xoshiro256 gen(1);
  std::vector<double> y;
  for (int i = 0; i < 101; ++i) y.push_back(rng::lognormal(gen, 0.0, 1.0));
  for (double tau : {0.25, 0.5, 0.9}) {
    const auto fit = quantile_regression(y, {}, tau);
    ASSERT_TRUE(fit.converged);
    // The LP optimum must lie between neighboring order statistics of
    // the R1 quantile; with n=101 and these taus it's an exact order stat.
    EXPECT_NEAR(fit.coefficients[0], quantile(y, tau, QuantileMethod::kR1InverseEcdf),
                1e-9)
        << tau;
  }
}

TEST(QuantReg, BinaryFactorEqualsGroupQuantileDifference) {
  // The Figure 4 design: y ~ intercept + indicator(system). The fitted
  // coefficients are the group quantile and the between-group difference.
  rng::Xoshiro256 gen(2);
  std::vector<double> y;
  std::vector<std::vector<double>> x;
  std::vector<double> g0, g1;
  for (int i = 0; i < 75; ++i) {
    const double a = rng::lognormal(gen, 0.0, 0.4);
    const double b = rng::lognormal(gen, 0.3, 0.6);
    y.push_back(a);
    x.push_back({0.0});
    g0.push_back(a);
    y.push_back(b);
    x.push_back({1.0});
    g1.push_back(b);
  }
  const double tau = 0.5;
  const auto fit = quantile_regression(y, x, tau);
  ASSERT_TRUE(fit.converged);
  const double q0 = quantile(g0, tau, QuantileMethod::kR1InverseEcdf);
  const double q1 = quantile(g1, tau, QuantileMethod::kR1InverseEcdf);
  EXPECT_NEAR(fit.coefficients[0], q0, 0.05);
  EXPECT_NEAR(fit.coefficients[0] + fit.coefficients[1], q1, 0.05);
}

TEST(QuantReg, RecoversLinearTrend) {
  // y = 2 + 3x + symmetric noise: median regression recovers the line.
  rng::Xoshiro256 gen(3);
  std::vector<double> y;
  std::vector<std::vector<double>> x;
  for (int i = 0; i < 200; ++i) {
    const double xi = rng::uniform(gen, 0.0, 10.0);
    x.push_back({xi});
    y.push_back(2.0 + 3.0 * xi + rng::normal(gen, 0.0, 0.5));
  }
  const auto fit = quantile_regression(y, x, 0.5);
  ASSERT_TRUE(fit.converged);
  EXPECT_NEAR(fit.coefficients[0], 2.0, 0.3);
  EXPECT_NEAR(fit.coefficients[1], 3.0, 0.06);
}

TEST(QuantReg, SweepIsMonotoneInTau) {
  rng::Xoshiro256 gen(4);
  std::vector<double> y;
  for (int i = 0; i < 150; ++i) y.push_back(rng::exponential(gen, 1.0));
  const std::vector<double> taus = {0.1, 0.3, 0.5, 0.7, 0.9};
  const auto sweep = quantile_regression_sweep(y, {}, taus);
  ASSERT_EQ(sweep.size(), taus.size());
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    ASSERT_TRUE(sweep[i].converged);
    EXPECT_GE(sweep[i].coefficients[0], sweep[i - 1].coefficients[0]);
  }
}

TEST(QuantReg, ObjectiveIsCheckLoss) {
  const std::vector<double> y = {1.0, 2.0, 10.0};
  const auto fit = quantile_regression(y, {}, 0.5);
  ASSERT_TRUE(fit.converged);
  // Median = 2; loss = 0.5*(|1-2| + |10-2|) = 4.5.
  EXPECT_NEAR(fit.coefficients[0], 2.0, 1e-9);
  EXPECT_NEAR(fit.objective, 4.5, 1e-9);
}

TEST(QuantReg, InputValidation) {
  const std::vector<double> y = {1.0, 2.0};
  EXPECT_THROW(quantile_regression({}, {}, 0.5), std::invalid_argument);
  EXPECT_THROW(quantile_regression(y, {}, 0.0), std::domain_error);
  EXPECT_THROW(quantile_regression(y, {}, 1.0), std::domain_error);
  const std::vector<std::vector<double>> ragged = {{1.0}, {1.0, 2.0}};
  EXPECT_THROW(quantile_regression(y, ragged, 0.5), std::invalid_argument);
}

TEST(QuantReg, BootstrapCiBracketsEstimate) {
  rng::Xoshiro256 gen(5);
  std::vector<double> y;
  for (int i = 0; i < 80; ++i) y.push_back(rng::lognormal(gen, 1.0, 0.5));
  const auto fit = quantile_regression(y, {}, 0.5);
  const auto ci = quantile_regression_bootstrap_ci(y, {}, 0.5, 100, 0.95, 42);
  ASSERT_EQ(ci.lower.size(), 1u);
  EXPECT_LE(ci.lower[0], fit.coefficients[0] + 1e-12);
  EXPECT_GE(ci.upper[0], fit.coefficients[0] - 1e-12);
  EXPECT_GT(ci.upper[0], ci.lower[0]);
}

}  // namespace
}  // namespace sci::stats
