#include <gtest/gtest.h>

#include <vector>

#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"
#include "stats/ranktests.hpp"

namespace sci::stats {
namespace {

std::vector<double> lognormal_sample(double mu, std::size_t n, std::uint64_t seed) {
  rng::Xoshiro256 gen(seed);
  std::vector<double> v;
  for (std::size_t i = 0; i < n; ++i) v.push_back(rng::lognormal(gen, mu, 0.5));
  return v;
}

TEST(MannWhitney, DetectsShift) {
  const auto a = lognormal_sample(0.0, 60, 1);
  const auto b = lognormal_sample(0.6, 60, 2);
  const auto r = mann_whitney_u(a, b);
  EXPECT_TRUE(r.reject(0.001));
  EXPECT_LT(r.prob_superiority, 0.3);  // a mostly below b
}

TEST(MannWhitney, AcceptsSameDistribution) {
  int rejections = 0;
  for (std::uint64_t s = 0; s < 40; ++s) {
    const auto a = lognormal_sample(1.0, 30, 100 + s);
    const auto b = lognormal_sample(1.0, 30, 200 + s);
    rejections += mann_whitney_u(a, b).reject(0.05);
  }
  EXPECT_LE(rejections, 6);
}

TEST(MannWhitney, ProbSuperiorityInterpretation) {
  // Disjoint samples: P[a > b] = 1.
  const std::vector<double> a = {10, 11, 12, 13};
  const std::vector<double> b = {1, 2, 3, 4};
  const auto r = mann_whitney_u(a, b);
  EXPECT_EQ(r.prob_superiority, 1.0);
  const auto r2 = mann_whitney_u(b, a);
  EXPECT_EQ(r2.prob_superiority, 0.0);
}

TEST(MannWhitney, AllTiedIsInconclusive) {
  const std::vector<double> a(10, 5.0), b(10, 5.0);
  const auto r = mann_whitney_u(a, b);
  EXPECT_EQ(r.p_value, 1.0);
  EXPECT_NEAR(r.prob_superiority, 0.5, 1e-12);
}

TEST(Wilcoxon, DetectsPairedImprovement) {
  // "After" is consistently ~10% faster on the same inputs.
  rng::Xoshiro256 gen(3);
  std::vector<double> before, after;
  for (int i = 0; i < 30; ++i) {
    const double base = rng::lognormal(gen, 2.0, 1.0);
    before.push_back(base);
    after.push_back(base * rng::uniform(gen, 0.85, 0.95));
  }
  EXPECT_TRUE(wilcoxon_signed_rank(before, after).reject(0.001));
}

TEST(Wilcoxon, AcceptsNoEffect) {
  int rejections = 0;
  for (std::uint64_t s = 0; s < 30; ++s) {
    rng::Xoshiro256 gen(400 + s);
    std::vector<double> x, y;
    for (int i = 0; i < 25; ++i) {
      x.push_back(rng::normal(gen, 10.0, 1.0));
      y.push_back(rng::normal(gen, 10.0, 1.0));
    }
    rejections += wilcoxon_signed_rank(x, y).reject(0.05);
  }
  EXPECT_LE(rejections, 5);
}

TEST(Wilcoxon, Validation) {
  const std::vector<double> x = {1, 2, 3};
  const std::vector<double> y = {1, 2};
  EXPECT_THROW((void)wilcoxon_signed_rank(x, y), std::invalid_argument);
  // All differences zero: nothing to test.
  const std::vector<double> same = {1, 2, 3, 4, 5, 6, 7};
  EXPECT_THROW((void)wilcoxon_signed_rank(same, same), std::invalid_argument);
}

TEST(Spearman, PerfectMonotoneRelations) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {2, 4, 9, 16, 100};  // nonlinear but monotone
  const auto r = spearman(x, y);
  EXPECT_NEAR(r.statistic, 1.0, 1e-12);
  EXPECT_LT(r.p_value, 0.01);
  std::vector<double> y_rev(y.rbegin(), y.rend());
  EXPECT_NEAR(spearman(x, y_rev).statistic, -1.0, 1e-12);
}

TEST(Spearman, IndependentSeriesNotSignificant) {
  int rejections = 0;
  for (std::uint64_t s = 0; s < 30; ++s) {
    rng::Xoshiro256 gen(600 + s);
    std::vector<double> x, y;
    for (int i = 0; i < 40; ++i) {
      x.push_back(rng::uniform01(gen));
      y.push_back(rng::uniform01(gen));
    }
    rejections += (spearman(x, y).p_value < 0.05);
  }
  EXPECT_LE(rejections, 5);
}

TEST(Spearman, RobustToOutliersUnlikePearson) {
  // One extreme outlier barely moves rank correlation.
  std::vector<double> x, y;
  rng::Xoshiro256 gen(7);
  for (int i = 0; i < 50; ++i) {
    const double v = rng::uniform(gen, 0.0, 10.0);
    x.push_back(v);
    y.push_back(2.0 * v + rng::normal(gen, 0.0, 0.5));
  }
  const double rho_clean = spearman(x, y).statistic;
  x.push_back(5.0);
  y.push_back(1e9);  // catastrophic outlier
  const double rho_dirty = spearman(x, y).statistic;
  EXPECT_NEAR(rho_dirty, rho_clean, 0.05);
}

TEST(Spearman, ConstantSeriesInconclusive) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> c(5, 7.0);
  const auto r = spearman(x, c);
  EXPECT_EQ(r.statistic, 0.0);
  EXPECT_EQ(r.p_value, 1.0);
}

TEST(RankTests, Validation) {
  const std::vector<double> tiny = {1.0};
  const std::vector<double> ok = {1.0, 2.0, 3.0};
  EXPECT_THROW((void)mann_whitney_u(tiny, ok), std::invalid_argument);
  EXPECT_THROW((void)spearman(tiny, tiny), std::invalid_argument);
}

}  // namespace
}  // namespace sci::stats
