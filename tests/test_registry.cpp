#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/registry.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"

namespace sci::core {
namespace {

class RegistryTest : public ::testing::Test {
 protected:
  // Tests use a private registry instance to avoid cross-test state.
  Registry registry_;
};

TEST_F(RegistryTest, RegistersAndLists) {
  registry_.add("alpha", [] { return 1.0; });
  registry_.add("beta", [] { return 2.0; });
  EXPECT_EQ(registry_.size(), 2u);
  EXPECT_EQ(registry_.names(), (std::vector<std::string>{"alpha", "beta"}));
}

TEST_F(RegistryTest, RejectsDuplicatesAndInvalid) {
  registry_.add("alpha", [] { return 1.0; });
  EXPECT_THROW(registry_.add("alpha", [] { return 1.0; }), std::invalid_argument);
  EXPECT_THROW(registry_.add("", [] { return 1.0; }), std::invalid_argument);
  EXPECT_THROW(registry_.add("x", nullptr), std::invalid_argument);
}

TEST_F(RegistryTest, RunAllRendersReports) {
  rng::Xoshiro256 gen(1);
  RegisteredBenchmark b;
  b.name = "noisy";
  b.unit = "us";
  b.measure = [&] { return rng::lognormal(gen, 1.0, 0.3); };
  b.sampling.max_samples = 200;
  registry_.add(std::move(b));
  registry_.add("deterministic", [] { return 7.0; });

  std::ostringstream os;
  const auto executed = registry_.run_all(os);
  EXPECT_EQ(executed, 2u);
  const auto text = os.str();
  EXPECT_NE(text.find("series noisy [us]"), std::string::npos);
  EXPECT_NE(text.find("median="), std::string::npos);
  EXPECT_NE(text.find("deterministic: 7"), std::string::npos);
  EXPECT_NE(text.find("Twelve-rule audit"), std::string::npos);
}

TEST_F(RegistryTest, FilterSelectsSubset) {
  registry_.add("sort_small", [] { return 1.0; });
  registry_.add("sort_large", [] { return 2.0; });
  registry_.add("hash", [] { return 3.0; });
  std::ostringstream os;
  RunnerOptions opts;
  opts.filter = "sort";
  EXPECT_EQ(registry_.run_all(os, opts), 2u);
  EXPECT_EQ(os.str().find("hash"), std::string::npos);
}

TEST_F(RegistryTest, CsvExportWritesFiles) {
  registry_.add("csvbench", [] { return 5.0; });
  RunnerOptions opts;
  opts.write_csv = true;
  opts.csv_directory = ::testing::TempDir();
  std::ostringstream os;
  registry_.run_all(os, opts);
  std::ifstream check(::testing::TempDir() + "/csvbench.csv");
  EXPECT_TRUE(check.good());
  std::string line;
  std::getline(check, line);
  EXPECT_EQ(line.front(), '#');  // documented header present
  std::remove((::testing::TempDir() + "/csvbench.csv").c_str());
}

TEST_F(RegistryTest, CsvExportCreatesMissingDirectory) {
  registry_.add("nested", [] { return 5.0; });
  RunnerOptions opts;
  opts.write_csv = true;
  opts.csv_directory = ::testing::TempDir() + "/scibench_new/deeper";
  std::ostringstream os;
  registry_.run_all(os, opts);
  std::ifstream check(opts.csv_directory + "/nested.csv");
  EXPECT_TRUE(check.good());
  std::remove((opts.csv_directory + "/nested.csv").c_str());
}

TEST_F(RegistryTest, RunAllIsStableAcrossWorkerCounts) {
  registry_.add("one", [] { return 1.0; });
  registry_.add("two", [] { return 2.0; });
  registry_.add("three", [] { return 3.0; });
  std::ostringstream serial, sharded;
  RunnerOptions opts;
  opts.workers = 1;
  registry_.run_all(serial, opts);
  opts.workers = 3;
  registry_.run_all(sharded, opts);
  // Reports render in registration order regardless of worker count.
  EXPECT_EQ(serial.str(), sharded.str());
}

TEST_F(RegistryTest, ClearEmptiesRegistry) {
  registry_.add("gone", [] { return 1.0; });
  registry_.clear();
  EXPECT_EQ(registry_.size(), 0u);
}

TEST(RegistryGlobal, StaticRegistrationMacroWorks) {
  // The SCIBENCH macro registers into the global instance at static
  // initialization; see the definition below this test.
  bool found = false;
  for (const auto& name : Registry::instance().names()) {
    if (name == "macro_registered") found = true;
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace sci::core

// Static-registration exercise for RegistryGlobal above.
SCIBENCH(macro_registered) { return 42.0; }
