#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"
#include "stats/regression.hpp"

namespace sci::stats {
namespace {

TEST(LeastSquares, RecoversExactLine) {
  std::vector<double> xs, ys;
  for (int i = 1; i <= 10; ++i) {
    xs.push_back(i);
    ys.push_back(2.0 + 3.0 * i);
  }
  const auto fit = fit_least_squares(xs, ys, {basis_constant(), basis_identity()});
  ASSERT_TRUE(fit.ok);
  EXPECT_NEAR(fit.coefficients[0], 2.0, 1e-9);
  EXPECT_NEAR(fit.coefficients[1], 3.0, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
  EXPECT_NEAR(fit.predict(20.0), 62.0, 1e-8);
}

TEST(LeastSquares, NoisyLineCisBracketTruth) {
  rng::Xoshiro256 gen(1);
  std::vector<double> xs, ys;
  for (int i = 0; i < 200; ++i) {
    const double x = rng::uniform(gen, 0.0, 10.0);
    xs.push_back(x);
    ys.push_back(5.0 - 2.0 * x + rng::normal(gen, 0.0, 0.5));
  }
  const auto fit = fit_least_squares(xs, ys, {basis_constant(), basis_identity()});
  ASSERT_TRUE(fit.ok);
  EXPECT_TRUE(fit.coefficient_cis[0].contains(5.0));
  EXPECT_TRUE(fit.coefficient_cis[1].contains(-2.0));
  EXPECT_GT(fit.r_squared, 0.97);
  EXPECT_NEAR(fit.residual_stddev, 0.5, 0.1);
}

TEST(LeastSquares, SingularDesignReportsFailure) {
  // Two identical bases: the normal equations are singular.
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  const std::vector<double> ys = {1, 2, 3, 4, 5};
  const auto fit = fit_least_squares(xs, ys, {basis_identity(), basis_identity()});
  EXPECT_FALSE(fit.ok);
}

TEST(LeastSquares, Validation) {
  const std::vector<double> xs = {1, 2};
  const std::vector<double> ys = {1, 2};
  EXPECT_THROW(fit_least_squares(xs, ys, {}), std::invalid_argument);
  EXPECT_THROW(fit_least_squares(xs, ys,
                                 {basis_constant(), basis_identity(), basis_log2()}),
               std::invalid_argument);  // n <= k
  const std::vector<double> bad = {1, 2, 3};
  EXPECT_THROW(fit_least_squares(bad, ys, {basis_constant()}), std::invalid_argument);
}

TEST(ScalingModel, RecoversKnownComponents) {
  // T(p) = 2 + 80/p + 0.5 log2 p, exactly.
  std::vector<double> ps, ts;
  for (double p : {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0}) {
    ps.push_back(p);
    ts.push_back(2.0 + 80.0 / p + 0.5 * std::log2(p));
  }
  const auto fit = fit_scaling_model(ps, ts);
  ASSERT_TRUE(fit.ok);
  EXPECT_NEAR(fit.t_serial, 2.0, 1e-8);
  EXPECT_NEAR(fit.t_parallel, 80.0, 1e-8);
  EXPECT_NEAR(fit.c_log, 0.5, 1e-8);
  EXPECT_NEAR(fit.serial_fraction(), 2.0 / 82.0, 1e-9);
  EXPECT_NEAR(fit.predict(128.0), 2.0 + 80.0 / 128.0 + 0.5 * 7.0, 1e-7);
}

TEST(ScalingModel, NoisyMeasurementsStillClose) {
  rng::Xoshiro256 gen(2);
  std::vector<double> ps, ts;
  for (double p : {1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0, 32.0}) {
    for (int rep = 0; rep < 5; ++rep) {
      ps.push_back(p);
      const double t = 1.0 + 50.0 / p + 0.2 * std::log2(p);
      ts.push_back(t * (1.0 + rng::normal(gen, 0.0, 0.01)));
    }
  }
  const auto fit = fit_scaling_model(ps, ts);
  ASSERT_TRUE(fit.ok);
  EXPECT_NEAR(fit.t_serial, 1.0, 0.2);
  EXPECT_NEAR(fit.t_parallel, 50.0, 1.5);
  EXPECT_GT(fit.r_squared, 0.99);
}

TEST(LeastSquares, ToStringListsBases) {
  const std::vector<double> xs = {1, 2, 4, 8};
  const std::vector<double> ys = {0, 1, 2, 3};
  const auto fit = fit_least_squares(xs, ys, {basis_constant(), basis_log2()});
  ASSERT_TRUE(fit.ok);
  const auto text = fit.to_string();
  EXPECT_NE(text.find("log2(x)"), std::string::npos);
  EXPECT_NE(text.find("R^2"), std::string::npos);
  EXPECT_NEAR(fit.coefficients[1], 1.0, 1e-9);  // y = log2 x exactly
}

}  // namespace
}  // namespace sci::stats
