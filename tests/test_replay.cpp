#include <gtest/gtest.h>

#include <string>

#include "sim/machine.hpp"
#include "simmpi/comm.hpp"
#include "simmpi/replay.hpp"

namespace sci::simmpi {
namespace {

TEST(ScheduleParser, ParsesBasicProgram) {
  const std::string text = R"(
# a two-rank ping-pong
rank 0
calc 1e-3
send 1 64 7
recv 1 8
rank 1
recv 0 7
send 0 64 8
)";
  const auto schedule = parse_schedule(text, 2);
  EXPECT_EQ(schedule.ranks, 2);
  ASSERT_EQ(schedule.per_rank[0].size(), 3u);
  ASSERT_EQ(schedule.per_rank[1].size(), 2u);
  EXPECT_EQ(schedule.per_rank[0][0].kind, OpKind::kCalc);
  EXPECT_DOUBLE_EQ(schedule.per_rank[0][0].seconds, 1e-3);
  EXPECT_EQ(schedule.per_rank[0][1].kind, OpKind::kSend);
  EXPECT_EQ(schedule.per_rank[0][1].peer, 1);
  EXPECT_EQ(schedule.per_rank[0][1].bytes, 64u);
  EXPECT_EQ(schedule.per_rank[0][1].tag, 7);
  EXPECT_EQ(schedule.total_ops(), 5u);
}

TEST(ScheduleParser, AllDirectiveAndWildcards) {
  const std::string text = R"(
all
barrier
allreduce
reduce 2
rank 0
recv any 5
)";
  const auto schedule = parse_schedule(text, 4);
  for (int r = 0; r < 4; ++r) {
    EXPECT_GE(schedule.per_rank[r].size(), 3u);
    EXPECT_EQ(schedule.per_rank[r][0].kind, OpKind::kBarrier);
    EXPECT_EQ(schedule.per_rank[r][2].peer, 2);  // reduce root
  }
  EXPECT_EQ(schedule.per_rank[0].back().peer, kAnySource);
}

TEST(ScheduleParser, LineNumberedErrors) {
  auto expect_error = [](const std::string& text, const char* fragment) {
    try {
      (void)parse_schedule(text, 2);
      FAIL() << "expected parse error for: " << text;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos) << e.what();
    }
  };
  expect_error("calc 1.0\n", "before any");
  expect_error("rank 5\n", "out of range");
  expect_error("rank 0\nsend 1 64\n", "send needs");
  expect_error("rank 0\ncalc -1\n", "non-negative");
  expect_error("rank 0\nfrobnicate\n", "unknown op");
  expect_error("rank 0\ncalc 1.0 extra\n", "trailing");
  expect_error("rank 0\nrecv banana 3\n", "rank or 'any'");
  EXPECT_THROW((void)parse_schedule("", 0), std::invalid_argument);
}

TEST(Replay, PingPongCompletesWithExpectedTraffic) {
  const auto schedule = parse_schedule(R"(
rank 0
send 1 64 1
recv 1 2
rank 1
recv 0 1
send 0 64 2
)", 2);
  const auto result = replay(schedule, sim::make_noiseless(4), 1);
  EXPECT_EQ(result.messages, 2u);
  EXPECT_GT(result.completion_s(), 0.0);
  EXPECT_LT(result.completion_s(), 1e-4);
}

TEST(Replay, DeterministicForFixedSeed) {
  const auto schedule = make_stencil_skeleton(8, 5, 1e-4, 1024);
  const auto a = replay(schedule, sim::make_daint(), 7);
  const auto b = replay(schedule, sim::make_daint(), 7);
  EXPECT_EQ(a.rank_finish_s, b.rank_finish_s);
  const auto c = replay(schedule, sim::make_daint(), 8);
  EXPECT_NE(a.rank_finish_s, c.rank_finish_s);
}

TEST(Replay, CalcTimeDominatesOnNoiselessMachine) {
  const auto schedule = parse_schedule("all\ncalc 0.5\n", 4);
  const auto result = replay(schedule, sim::make_noiseless(4), 1);
  EXPECT_NEAR(result.completion_s(), 0.5, 1e-9);
}

TEST(Replay, StencilSkeletonShape) {
  const auto schedule = make_stencil_skeleton(4, 3, 1e-3, 512);
  EXPECT_EQ(schedule.ranks, 4);
  // Per step: calc + 2 sends + 2 recvs + allreduce = 6 ops.
  for (const auto& ops : schedule.per_rank) EXPECT_EQ(ops.size(), 18u);
  const auto result = replay(schedule, sim::make_noiseless(8), 2);
  // 3 steps of 1 ms compute + small comm: just over 3 ms.
  EXPECT_GT(result.completion_s(), 3e-3);
  EXPECT_LT(result.completion_s(), 3.5e-3);
  EXPECT_THROW(make_stencil_skeleton(1, 3, 1e-3, 1), std::invalid_argument);
}

TEST(Replay, NoiseAmplifiesWithScale) {
  // The SC'10 result the paper cites: the same per-step noise hurts more
  // at larger scale because every allreduce absorbs the slowest rank.
  const double work = 1e-3;
  const int steps = 20;
  auto slowdown = [&](int ranks) {
    const auto schedule = make_stencil_skeleton(ranks, steps, work, 512);
    const double noiseless = replay(schedule, sim::make_noiseless(64), 3).completion_s();
    const double noisy = replay(schedule, sim::make_daint(), 3).completion_s();
    return noisy / noiseless;
  };
  const double at4 = slowdown(4);
  const double at32 = slowdown(32);
  EXPECT_GT(at32, at4);
  EXPECT_GT(at4, 1.0);
}

TEST(CommStats, CountsTraffic) {
  const auto schedule = parse_schedule(R"(
rank 0
send 1 100 1
send 1 50 2
recv 1 3
rank 1
recv 0 1
recv 0 2
send 0 25 3
)", 2);
  World world(sim::make_noiseless(4), 2, 4);
  world.launch([&](Comm& c) -> sim::Task<void> {
    for (const Op& op : schedule.per_rank[static_cast<std::size_t>(c.rank())]) {
      if (op.kind == OpKind::kSend) co_await c.send(op.peer, op.tag, op.bytes);
      if (op.kind == OpKind::kRecv) (void)co_await c.recv(op.peer, op.tag);
    }
  });
  world.run();
  EXPECT_EQ(world.comm(0).stats().sends, 2u);
  EXPECT_EQ(world.comm(0).stats().bytes_sent, 150u);
  EXPECT_EQ(world.comm(0).stats().receives, 1u);
  EXPECT_EQ(world.comm(0).stats().bytes_received, 25u);
  EXPECT_EQ(world.comm(1).stats().sends, 1u);
  EXPECT_EQ(world.comm(1).stats().bytes_received, 150u);
}

}  // namespace
}  // namespace sci::simmpi
