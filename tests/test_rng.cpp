#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"

namespace sci::rng {
namespace {

TEST(Xoshiro, DeterministicForFixedSeed) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro, DifferentSeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == b());
  EXPECT_LT(equal, 3);
}

TEST(Xoshiro, SplitmixExpansionAvoidsZeroState) {
  // Even seed 0 must produce a working generator.
  Xoshiro256 gen(0);
  std::uint64_t acc = 0;
  for (int i = 0; i < 10; ++i) acc |= gen();
  EXPECT_NE(acc, 0u);
}

TEST(Xoshiro, JumpProducesDisjointStream) {
  Xoshiro256 a(7);
  Xoshiro256 b = a;  // same state
  b.jump();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) equal += (a() == b());
  EXPECT_EQ(equal, 0);
}

TEST(Xoshiro, SplitAdvancesParent) {
  Xoshiro256 parent(9);
  Xoshiro256 copy = parent;
  Xoshiro256 child = parent.split();
  EXPECT_EQ(child, copy);       // child got the pre-jump state
  EXPECT_NE(parent, copy);      // parent moved past it
}

TEST(Xoshiro, TableJumpMatchesReferenceJump) {
  // jump() applies a precomputed linear map; it must be bit-identical
  // to the Blackman & Vigna reference loop for ANY state, including
  // repeated jumps (the streams every split() hands out depend on it).
  for (std::uint64_t seed : {0ull, 1ull, 9ull, 0xdeadbeefull, ~0ull}) {
    Xoshiro256 table(seed);
    Xoshiro256 reference(seed);
    for (int hop = 0; hop < 4; ++hop) {
      table.jump();
      reference.jump_reference();
      ASSERT_EQ(table, reference) << "seed " << seed << " hop " << hop;
    }
  }
}

TEST(Uniform01, InUnitInterval) {
  Xoshiro256 gen(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = uniform01(gen);
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Uniform01, MeanNearHalf) {
  Xoshiro256 gen(6);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += uniform01(gen);
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(UniformBelow, RespectsBound) {
  Xoshiro256 gen(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(uniform_below(gen, bound), bound);
  }
}

TEST(UniformBelow, ZeroBoundReturnsZero) {
  Xoshiro256 gen(8);
  EXPECT_EQ(uniform_below(gen, 0), 0u);
}

TEST(UniformBelow, RoughlyUniform) {
  Xoshiro256 gen(9);
  std::array<int, 8> counts{};
  constexpr int kN = 80000;
  for (int i = 0; i < kN; ++i) ++counts[uniform_below(gen, 8)];
  for (int c : counts) EXPECT_NEAR(c, kN / 8, kN / 8 * 0.1);
}

struct MomentCase {
  const char* name;
  double expected_mean;
  double expected_var;
  double (*sample)(Xoshiro256&);
};

class DistributionMoments : public ::testing::TestWithParam<MomentCase> {};

TEST_P(DistributionMoments, MeanAndVarianceMatch) {
  const auto& mc = GetParam();
  Xoshiro256 gen(0xfeed);
  constexpr int kN = 200000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < kN; ++i) {
    const double x = mc.sample(gen);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / kN;
  const double var = sum2 / kN - mean * mean;
  EXPECT_NEAR(mean, mc.expected_mean, 0.03 * std::max(1.0, std::fabs(mc.expected_mean)))
      << mc.name;
  EXPECT_NEAR(var, mc.expected_var, 0.08 * std::max(1.0, mc.expected_var)) << mc.name;
}

INSTANTIATE_TEST_SUITE_P(
    Samplers, DistributionMoments,
    ::testing::Values(
        MomentCase{"normal01", 0.0, 1.0, [](Xoshiro256& g) { return normal(g); }},
        MomentCase{"normal_3_2", 3.0, 4.0, [](Xoshiro256& g) { return normal(g, 3.0, 2.0); }},
        MomentCase{"exponential2", 0.5, 0.25,
                   [](Xoshiro256& g) { return exponential(g, 2.0); }},
        // lognormal(0, 0.5): mean exp(0.125), var (e^{0.25}-1)e^{0.25}
        MomentCase{"lognormal", std::exp(0.125),
                   (std::exp(0.25) - 1.0) * std::exp(0.25),
                   [](Xoshiro256& g) { return lognormal(g, 0.0, 0.5); }},
        // Pareto(1, 3): mean 3/2, var 3/4
        MomentCase{"pareto13", 1.5, 0.75, [](Xoshiro256& g) { return pareto(g, 1.0, 3.0); }},
        // Gamma(4, 0.5): mean 2, var 1
        MomentCase{"gamma4", 2.0, 1.0, [](Xoshiro256& g) { return gamma(g, 4.0, 0.5); }},
        // Gamma(0.5, 2): mean 1, var 2 (shape < 1 branch)
        MomentCase{"gamma_half", 1.0, 2.0,
                   [](Xoshiro256& g) { return gamma(g, 0.5, 2.0); }}),
    [](const auto& tpi) { return tpi.param.name; });

TEST(Bernoulli, FrequencyMatchesP) {
  Xoshiro256 gen(11);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) hits += bernoulli(gen, 0.3);
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(Discrete, FollowsWeights) {
  Xoshiro256 gen(12);
  const std::vector<double> weights = {1.0, 3.0, 6.0};
  std::array<int, 3> counts{};
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) ++counts[discrete(gen, weights)];
  EXPECT_NEAR(counts[0] / static_cast<double>(kN), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(kN), 0.3, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(kN), 0.6, 0.01);
}

TEST(Shuffle, ProducesPermutation) {
  Xoshiro256 gen(13);
  std::vector<std::size_t> v(100);
  std::iota(v.begin(), v.end(), std::size_t{0});
  shuffle(gen, v);
  auto sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < sorted.size(); ++i) EXPECT_EQ(sorted[i], i);
  // Not the identity (probability ~1/100!).
  std::vector<std::size_t> identity(100);
  std::iota(identity.begin(), identity.end(), std::size_t{0});
  EXPECT_NE(v, identity);
}

TEST(SampleN, ReturnsRequestedCount) {
  Xoshiro256 gen(14);
  const auto xs = sample_n(gen, 257, [](Xoshiro256& g) { return uniform01(g); });
  EXPECT_EQ(xs.size(), 257u);
}

}  // namespace
}  // namespace sci::rng
