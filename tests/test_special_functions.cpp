#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "stats/special_functions.hpp"

namespace sci::stats {
namespace {

TEST(RegularizedGamma, KnownValues) {
  // P(1, x) = 1 - e^-x.
  EXPECT_NEAR(regularized_gamma_p(1.0, 1.0), 1.0 - std::exp(-1.0), 1e-12);
  EXPECT_NEAR(regularized_gamma_p(1.0, 2.5), 1.0 - std::exp(-2.5), 1e-12);
  // P(0.5, x) = erf(sqrt(x)).
  EXPECT_NEAR(regularized_gamma_p(0.5, 1.0), std::erf(1.0), 1e-12);
  EXPECT_NEAR(regularized_gamma_p(0.5, 4.0), std::erf(2.0), 1e-12);
}

TEST(RegularizedGamma, ComplementsSumToOne) {
  for (double a : {0.3, 1.0, 2.5, 10.0, 50.0}) {
    for (double x : {0.1, 1.0, 5.0, 40.0}) {
      EXPECT_NEAR(regularized_gamma_p(a, x) + regularized_gamma_q(a, x), 1.0, 1e-12);
    }
  }
}

TEST(RegularizedGamma, Boundaries) {
  EXPECT_EQ(regularized_gamma_p(2.0, 0.0), 0.0);
  EXPECT_EQ(regularized_gamma_q(2.0, 0.0), 1.0);
  EXPECT_THROW((void)regularized_gamma_p(0.0, 1.0), std::domain_error);
  EXPECT_THROW((void)regularized_gamma_p(1.0, -1.0), std::domain_error);
}

TEST(RegularizedBeta, KnownValues) {
  // I_x(1, 1) = x.
  EXPECT_NEAR(regularized_beta(1.0, 1.0, 0.3), 0.3, 1e-12);
  // I_x(2, 2) = x^2 (3 - 2x).
  EXPECT_NEAR(regularized_beta(2.0, 2.0, 0.5), 0.5, 1e-12);
  EXPECT_NEAR(regularized_beta(2.0, 2.0, 0.25), 0.25 * 0.25 * (3.0 - 0.5), 1e-12);
  // Symmetry I_x(a,b) = 1 - I_{1-x}(b,a).
  EXPECT_NEAR(regularized_beta(3.0, 5.0, 0.4), 1.0 - regularized_beta(5.0, 3.0, 0.6), 1e-12);
}

TEST(RegularizedBeta, Boundaries) {
  EXPECT_EQ(regularized_beta(2.0, 3.0, 0.0), 0.0);
  EXPECT_EQ(regularized_beta(2.0, 3.0, 1.0), 1.0);
  EXPECT_THROW((void)regularized_beta(-1.0, 1.0, 0.5), std::domain_error);
  EXPECT_THROW((void)regularized_beta(1.0, 1.0, 1.5), std::domain_error);
}

TEST(NormalCdf, KnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-14);
  EXPECT_NEAR(normal_cdf(1.959963985), 0.975, 1e-9);
  EXPECT_NEAR(normal_cdf(-1.959963985), 0.025, 1e-9);
  EXPECT_NEAR(normal_cdf(2.5758293), 0.995, 1e-7);
}

TEST(InverseNormalCdf, KnownValues) {
  EXPECT_NEAR(inverse_normal_cdf(0.5), 0.0, 1e-12);
  EXPECT_NEAR(inverse_normal_cdf(0.975), 1.959963985, 1e-8);
  EXPECT_NEAR(inverse_normal_cdf(0.995), 2.575829304, 1e-8);
  EXPECT_NEAR(inverse_normal_cdf(0.841344746), 1.0, 1e-8);
}

TEST(InverseNormalCdf, Boundaries) {
  EXPECT_TRUE(std::isinf(inverse_normal_cdf(0.0)));
  EXPECT_TRUE(std::isinf(inverse_normal_cdf(1.0)));
  EXPECT_THROW((void)inverse_normal_cdf(-0.1), std::domain_error);
  EXPECT_THROW((void)inverse_normal_cdf(1.1), std::domain_error);
}

class InverseRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(InverseRoundTrip, NormalQuantileCdf) {
  const double p = GetParam();
  EXPECT_NEAR(normal_cdf(inverse_normal_cdf(p)), p, 1e-10);
}

TEST_P(InverseRoundTrip, BetaInverse) {
  const double p = GetParam();
  for (double a : {0.5, 2.0, 7.5}) {
    for (double b : {0.5, 3.0}) {
      const double x = inverse_regularized_beta(a, b, p);
      EXPECT_NEAR(regularized_beta(a, b, x), p, 1e-8) << "a=" << a << " b=" << b;
    }
  }
}

TEST_P(InverseRoundTrip, GammaInverse) {
  const double p = GetParam();
  for (double a : {0.5, 1.0, 4.0, 30.0}) {
    const double x = inverse_regularized_gamma_p(a, p);
    EXPECT_NEAR(regularized_gamma_p(a, x), p, 1e-8) << "a=" << a;
  }
}

INSTANTIATE_TEST_SUITE_P(Probabilities, InverseRoundTrip,
                         ::testing::Values(0.001, 0.025, 0.1, 0.5, 0.9, 0.975, 0.999));

TEST(NormalPdf, IntegratesToCdfDifference) {
  // Trapezoid check on [-1, 1]: integral phi = Phi(1) - Phi(-1).
  double acc = 0.0;
  const int steps = 20000;
  for (int i = 0; i < steps; ++i) {
    const double x0 = -1.0 + 2.0 * i / steps;
    const double x1 = -1.0 + 2.0 * (i + 1) / steps;
    acc += 0.5 * (normal_pdf(x0) + normal_pdf(x1)) * (x1 - x0);
  }
  EXPECT_NEAR(acc, normal_cdf(1.0) - normal_cdf(-1.0), 1e-8);
}

}  // namespace
}  // namespace sci::stats
