// Cross-validation between independent statistical implementations:
// where theory says two of our procedures must agree, test that they do.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"
#include "stats/bootstrap.hpp"
#include "stats/compare.hpp"
#include "stats/confidence.hpp"
#include "stats/descriptive.hpp"
#include "stats/distributions.hpp"
#include "stats/independence.hpp"
#include "stats/normality.hpp"
#include "stats/ranktests.hpp"

namespace sci::stats {
namespace {

std::vector<double> normal_sample(double mean, double sd, std::size_t n,
                                  std::uint64_t seed) {
  rng::Xoshiro256 gen(seed);
  std::vector<double> v;
  for (std::size_t i = 0; i < n; ++i) v.push_back(rng::normal(gen, mean, sd));
  return v;
}

TEST(CrossCheck, AnovaWithTwoGroupsEqualsPooledTTestSquared) {
  // F(1, n) = t(n)^2 and the p-values coincide.
  const auto a = normal_sample(10.0, 2.0, 40, 1);
  const auto b = normal_sample(11.0, 2.0, 40, 2);
  const std::vector<std::vector<double>> groups = {a, b};
  const auto anova = one_way_anova(groups);
  const auto t = t_test(a, b, /*pooled=*/true);
  EXPECT_NEAR(anova.f_statistic, t.statistic * t.statistic, 1e-9);
  EXPECT_NEAR(anova.p_value, t.p_value, 1e-9);
}

TEST(CrossCheck, KruskalWallisWithTwoGroupsMatchesMannWhitney) {
  // For k = 2, KW is the (chi^2-approximated) Mann-Whitney; p-values
  // agree up to the different approximations (continuity correction).
  rng::Xoshiro256 gen(3);
  std::vector<double> a, b;
  for (int i = 0; i < 50; ++i) {
    a.push_back(rng::lognormal(gen, 0.0, 0.5));
    b.push_back(rng::lognormal(gen, 0.35, 0.5));
  }
  const std::vector<std::vector<double>> groups = {a, b};
  const auto kw = kruskal_wallis(groups);
  const auto mw = mann_whitney_u(a, b);
  EXPECT_EQ(kw.reject(0.05), mw.reject(0.05));
  EXPECT_NEAR(kw.p_value, mw.p_value, 0.02);
}

TEST(CrossCheck, BootstrapMedianCiAgreesWithRankCi) {
  rng::Xoshiro256 gen(4);
  std::vector<double> v;
  for (int i = 0; i < 200; ++i) v.push_back(rng::lognormal(gen, 1.0, 0.6));
  const auto rank_ci = median_confidence_interval(v, 0.90);
  const auto boot_ci = bootstrap_percentile_ci(
      v, [](std::span<const double> xs) { return median(xs); }, 2000, 0.90, 5);
  // Same center, comparable widths (within 2x of each other).
  EXPECT_TRUE(rank_ci.contains(median(v)));
  EXPECT_TRUE(boot_ci.contains(median(v)));
  EXPECT_LT(boot_ci.width(), 2.0 * rank_ci.width());
  EXPECT_LT(rank_ci.width(), 2.0 * boot_ci.width());
}

TEST(CrossCheck, StudentTQuantileInvertsCdf) {
  for (double dof : {2.0, 7.0, 30.0, 200.0}) {
    const StudentT t{dof};
    for (double p : {0.01, 0.3, 0.5, 0.8, 0.99}) {
      EXPECT_NEAR(t.cdf(t.quantile(p)), p, 1e-9) << dof;
    }
  }
}

TEST(CrossCheck, NormalityTestsAgreeOnClearCases) {
  const auto good = normal_sample(0.0, 1.0, 400, 6);
  EXPECT_FALSE(shapiro_wilk(good).reject(0.01));
  EXPECT_FALSE(anderson_darling(good).reject(0.01));
  EXPECT_FALSE(jarque_bera(good).reject(0.01));

  rng::Xoshiro256 gen(7);
  std::vector<double> bad;
  for (int i = 0; i < 400; ++i) bad.push_back(rng::pareto(gen, 1.0, 1.5));
  EXPECT_TRUE(shapiro_wilk(bad).reject(0.01));
  EXPECT_TRUE(anderson_darling(bad).reject(0.01));
  EXPECT_TRUE(jarque_bera(bad).reject(0.01));
}

TEST(CrossCheck, EffectiveSampleSizeConsistentWithMeanCiInflation) {
  // For AR(1) data, a CI computed from n is ~sqrt(n / n_eff) too narrow;
  // check the diagnosis and the inflation agree in direction.
  rng::Xoshiro256 gen(8);
  std::vector<double> v;
  double x = 0.0;
  for (int i = 0; i < 4000; ++i) {
    x = 0.6 * x + rng::normal(gen);
    v.push_back(x + 50.0);
  }
  const double n_eff = effective_sample_size(v);
  EXPECT_LT(n_eff, 2000.0);
  // Split-half means differ by more than the naive CI half-width implies.
  const auto first = std::vector<double>(v.begin(), v.begin() + 2000);
  const auto second = std::vector<double>(v.begin() + 2000, v.end());
  const double diff =
      std::fabs(arithmetic_mean(first) - arithmetic_mean(second));
  const double naive_half = mean_confidence_interval(v, 0.95).width() / 2.0;
  // Not a strict theorem per-seed, but with phi=0.6 and these sizes the
  // naive CI must substantially understate between-block drift.
  EXPECT_GT(diff, naive_half);
}

TEST(CrossCheck, SpearmanEqualsPearsonOnRanksForDistinctValues) {
  // With no ties, rho = 1 - 6 sum d^2 / (n(n^2-1)) (classic formula).
  const std::vector<double> x = {1, 2, 3, 4, 5, 6, 7};
  const std::vector<double> y = {2, 1, 4, 3, 7, 5, 6};
  double d2 = 0.0;
  const std::vector<double> rank_diffs = {-1, 1, -1, 1, -2, 1, 1};
  for (double d : rank_diffs) d2 += d * d;
  const double expected = 1.0 - 6.0 * d2 / (7.0 * 48.0);
  EXPECT_NEAR(spearman(x, y).statistic, expected, 1e-12);
}

TEST(CrossCheck, QuantileCiMatchesLeBoudecWorkedRanks) {
  // n = 100, p = 0.5, 95%: z = 1.96, ranks floor(50 - 9.8) = 40 and
  // ceil(50 + 9.8) + 1 = 61 (1-based) -- check against sorted integers.
  std::vector<double> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i + 1;  // sorted 1..100
  const auto ci = quantile_confidence_interval(v, 0.5, 0.95);
  EXPECT_EQ(ci.lower, 40.0);
  EXPECT_EQ(ci.upper, 61.0);
}

}  // namespace
}  // namespace sci::stats
