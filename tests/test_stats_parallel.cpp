// Differential and property tests for the vectorized bootstrap stack:
// multi-lane RNG streams, branchless selection kernels, the
// BootstrapEngine's thread/lane determinism contract, and the grouped
// policy-taking entry points.
//
// The oracle throughout is a deliberately naive scalar reference: lane
// l draws from Xoshiro256(seed) jumped l times and evaluates each
// replicate on a materialized resample. The engine -- waves, selection,
// Kahan rows, thread sharding -- must reproduce it bit for bit at every
// thread count.
//
// Own test binary: overrides global operator new/delete to count
// allocator entries, proving the engine's warmed steady state performs
// zero allocations per distribution() call.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <limits>
#include <new>
#include <span>
#include <vector>

#include "rng/distributions.hpp"
#include "rng/lanes.hpp"
#include "rng/xoshiro.hpp"
#include "stats/bootstrap.hpp"
#include "stats/bootstrap_engine.hpp"
#include "stats/confidence.hpp"
#include "stats/descriptive.hpp"
#include "stats/histogram_select.hpp"
#include "stats/quantile_regression.hpp"
#include "stats/selection.hpp"
#include "stats/simd_dispatch.hpp"

namespace {
std::atomic<std::size_t> g_alloc_calls{0};
}

void* operator new(std::size_t size) {
  g_alloc_calls.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace sci::stats {
namespace {

std::vector<double> lognormal_sample(std::size_t n, std::uint64_t seed) {
  rng::Xoshiro256 gen(seed);
  std::vector<double> v;
  v.reserve(n);
  for (std::size_t i = 0; i < n; ++i) v.push_back(rng::lognormal(gen, 0.0, 0.7));
  return v;
}

/// The naive multi-lane oracle: contiguous per-lane replicate blocks,
/// lane l = Xoshiro256(seed) jumped l times, every replicate evaluated
/// on a materialized resample. No waves, no selection, no threads.
std::vector<double> reference_multilane(std::span<const double> xs, const Statistic& stat,
                                        std::size_t replicates, std::uint64_t seed,
                                        std::size_t lanes) {
  rng::Xoshiro256 root(seed);
  std::vector<rng::Xoshiro256> gens;
  for (std::size_t l = 0; l < lanes; ++l) gens.push_back(root.split());

  const std::size_t n = xs.size();
  const std::size_t base = replicates / lanes;
  const std::size_t rem = replicates % lanes;
  std::vector<double> out(replicates);
  std::vector<double> resample(n);
  std::size_t start = 0;
  for (std::size_t l = 0; l < lanes; ++l) {
    const std::size_t len = base + (l < rem ? 1 : 0);
    auto& gen = gens[l];
    for (std::size_t r = 0; r < len; ++r) {
      for (std::size_t i = 0; i < n; ++i) {
        resample[i] = xs[rng::uniform_below(gen, n)];
      }
      out[start + r] = stat(resample);
    }
    start += len;
  }
  return out;
}

struct StatCase {
  const char* name;
  ResampleStat fast;
  Statistic generic;
};

std::vector<StatCase> stat_cases() {
  std::vector<StatCase> cases;
  cases.push_back({"mean", ResampleStat::mean(),
                   [](std::span<const double> xs) { return arithmetic_mean(xs); }});
  cases.push_back({"median", ResampleStat::median(),
                   [](std::span<const double> xs) { return median(xs); }});
  cases.push_back({"q90_r6", ResampleStat::quantile(0.9, QuantileMethod::kR6Weibull),
                   [](std::span<const double> xs) {
                     return quantile(xs, 0.9, QuantileMethod::kR6Weibull);
                   }});
  cases.push_back({"q25_r1", ResampleStat::quantile(0.25, QuantileMethod::kR1InverseEcdf),
                   [](std::span<const double> xs) {
                     return quantile(xs, 0.25, QuantileMethod::kR1InverseEcdf);
                   }});
  const Statistic cov = [](std::span<const double> xs) {
    return coefficient_of_variation(xs);
  };
  cases.push_back({"custom_cov", ResampleStat::custom(cov), cov});
  return cases;
}

// ------------------------------------------------------- lane RNG

TEST(LaneRng, LaneLIsSeedGeneratorJumpedLTimes) {
  rng::LaneRng lanes;
  lanes.reset(0xfeedface, 5);
  for (std::size_t l = 0; l < 5; ++l) {
    rng::Xoshiro256 want(0xfeedface);
    for (std::size_t j = 0; j < l; ++j) want.jump();
    rng::Xoshiro256 got = lanes.lane(l);  // copy; don't advance the member
    for (int i = 0; i < 64; ++i) ASSERT_EQ(got(), want()) << "lane " << l;
  }
}

TEST(LaneRng, FillIndicesMatchesScalarUniformBelowDrawForDraw) {
  // Every (bound, count) cell, with and without a rank map, against the
  // scalar loop -- including bounds that trigger Lemire rejections.
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 7ull, 641ull}) {
    for (std::size_t count : {1u, 2u, 5u, 33u}) {
      const std::size_t kLanes = 6;
      std::vector<std::uint32_t> map(bound);
      for (std::uint32_t i = 0; i < bound; ++i) map[i] = i * 2 + 1;

      for (const bool mapped : {false, true}) {
        rng::LaneRng lanes;
        lanes.reset(99, kLanes);
        const std::size_t stride = count + 3;  // padding must stay untouched
        std::vector<std::uint32_t> out(kLanes * stride, 0xdeadbeef);
        // Fill in two calls to exercise first/active offsets.
        lanes.fill_indices(bound, count, 0, 2, mapped ? map.data() : nullptr, out.data(),
                           stride);
        lanes.fill_indices(bound, count, 2, kLanes - 2, mapped ? map.data() : nullptr,
                           out.data() + 2 * stride, stride);

        rng::Xoshiro256 root(99);
        for (std::size_t l = 0; l < kLanes; ++l) {
          rng::Xoshiro256 gen = root.split();
          for (std::size_t i = 0; i < count; ++i) {
            const auto draw =
                static_cast<std::uint32_t>(rng::uniform_below(gen, bound));
            const std::uint32_t want = mapped ? map[draw] : draw;
            ASSERT_EQ(out[l * stride + i], want)
                << "lane " << l << " draw " << i << " bound " << bound;
          }
          for (std::size_t i = count; i < stride; ++i) {
            ASSERT_EQ(out[l * stride + i], 0xdeadbeefu) << "padding clobbered";
          }
        }
      }
    }
  }
}

// ------------------------------------------------ selection kernels

TEST(Selection, SelectKthMatchesNthElementUnderDuplicates) {
  rng::Xoshiro256 gen(7);
  for (std::size_t n : {1u, 2u, 3u, 5u, 24u, 25u, 100u, 257u}) {
    // Small bounds force heavy duplication -- the three-way partition's
    // worst case and the reason it exists.
    for (std::uint64_t bound : {1ull, 3ull, 8ull, 1000ull}) {
      std::vector<std::uint32_t> data(n);
      for (auto& v : data) v = static_cast<std::uint32_t>(rng::uniform_below(gen, bound));
      auto sorted = data;
      std::sort(sorted.begin(), sorted.end());
      for (std::size_t k : {std::size_t{0}, n / 2, n - 1}) {
        auto scratch = data;
        ASSERT_EQ(select_kth(scratch.data(), n, k), sorted[k])
            << "n " << n << " bound " << bound << " k " << k;
      }
      if (n >= 2) {
        auto scratch = data;
        const auto pair = select_kth_pair(scratch.data(), n, n / 2 - 1);
        ASSERT_EQ(pair.kth, sorted[n / 2 - 1]);
        ASSERT_EQ(pair.next, sorted[n / 2]);
      }
      ASSERT_EQ(min_of(data.data(), n), sorted.front());
      ASSERT_EQ(max_of(data.data(), n), sorted.back());
    }
  }
}

TEST(Selection, SelectionQuantileMatchesMaterializedResample) {
  const auto values = lognormal_sample(41, 3);
  const auto sorted = sorted_copy(values);
  rng::Xoshiro256 gen(11);
  for (const auto method : {QuantileMethod::kR1InverseEcdf, QuantileMethod::kR6Weibull,
                            QuantileMethod::kR7Linear}) {
    for (const double p : {0.0, 0.01, 0.25, 0.5, 0.75, 0.99, 1.0}) {
      for (const std::size_t m : {1u, 2u, 7u, 41u}) {
        std::vector<std::uint32_t> picks(m);
        std::vector<double> resample(m);
        for (std::size_t i = 0; i < m; ++i) {
          picks[i] = static_cast<std::uint32_t>(rng::uniform_below(gen, sorted.size()));
          resample[i] = sorted[picks[i]];
        }
        const double want = quantile(resample, p, method);
        const double got = selection_quantile(picks, sorted, p, method);
        ASSERT_EQ(got, want) << "p " << p << " m " << m;
      }
    }
  }
}

// ------------------------------------- SIMD dispatch + histogram path

/// Restores the dispatch override and the histogram crossover no matter
/// how a test exits, so ISA/crossover state never leaks between tests.
struct KernelStateGuard {
  std::size_t saved_crossover = histogram_select_crossover();
  ~KernelStateGuard() {
    simd::reset_isa();
    set_histogram_select_crossover(saved_crossover);
  }
};

TEST(SimdDispatch, ForceIsaOverridesAndCapsAtHostSupport) {
  KernelStateGuard guard;
  simd::force_isa(simd::Isa::kScalar);
  EXPECT_EQ(simd::active_isa(), simd::Isa::kScalar);
  EXPECT_EQ(simd::dispatch().isa, simd::Isa::kScalar);
  simd::force_isa(simd::Isa::kAvx2);
  // Requesting AVX2 on a host without it must degrade to scalar, never
  // hand out a table the machine cannot execute.
  EXPECT_EQ(simd::active_isa(), simd::host_isa());
  EXPECT_EQ(simd::dispatch().isa, simd::host_isa());
  simd::reset_isa();
  EXPECT_EQ(simd::scalar_kernels().isa, simd::Isa::kScalar);
}

TEST(SimdDispatch, MeanRows4BitIdenticalAcrossIsaTablesAndToSingleRowKahan) {
  // The determinism contract at kernel granularity: the dispatched
  // 4-row kernel (AVX2 on hosts that have it) must emit bit-identical
  // doubles to the scalar table AND to a plain single-row Kahan chain.
  rng::Xoshiro256 gen(31);
  for (const std::size_t n : {1u, 2u, 3u, 17u, 64u, 257u}) {
    const auto xs = lognormal_sample(n, 700 + n);
    std::vector<std::uint32_t> idx(4 * n);
    for (auto& v : idx) v = static_cast<std::uint32_t>(rng::uniform_below(gen, n));
    double scalar_out[4], dispatched_out[4];
    simd::scalar_kernels().mean_rows4(xs.data(), idx.data(), n, n, scalar_out);
    simd::dispatch().mean_rows4(xs.data(), idx.data(), n, n, dispatched_out);
    for (std::size_t j = 0; j < 4; ++j) {
      double sum = 0.0, comp = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        const double y = xs[idx[j * n + i]] - comp;
        const double t = sum + y;
        comp = (t - sum) - y;
        sum = t;
      }
      const double want = sum / static_cast<double>(n);
      ASSERT_EQ(scalar_out[j], want) << "row " << j << " n " << n;
      ASSERT_EQ(dispatched_out[j], want)
          << "row " << j << " n " << n << " isa " << to_string(simd::dispatch().isa);
    }
  }
}

TEST(SimdDispatch, RankSelectMatchesExpandedMultisetAcrossIsaTables) {
  // Oracle: expand the histogram into the sorted multiset it encodes and
  // index it directly. Bin counts include zeros and runs of zeros so the
  // pair walk's next-nonzero scan is exercised.
  rng::Xoshiro256 gen(47);
  for (const std::size_t bins : {1u, 2u, 7u, 8u, 9u, 16u, 33u, 257u}) {
    for (int trial = 0; trial < 8; ++trial) {
      std::vector<std::uint32_t> counts(bins);
      std::vector<std::uint32_t> expanded;
      for (std::uint32_t b = 0; b < bins; ++b) {
        counts[b] = static_cast<std::uint32_t>(rng::uniform_below(gen, 4));
        for (std::uint32_t c = 0; c < counts[b]; ++c) expanded.push_back(b);
      }
      if (expanded.size() < 2) continue;
      const std::size_t total = expanded.size();
      for (const std::size_t k : {std::size_t{0}, total / 2, total - 2}) {
        if (k + 1 >= total) continue;  // pair kernels require k + 1 < total
        for (const simd::Kernels* kt : {&simd::scalar_kernels(), &simd::dispatch()}) {
          ASSERT_EQ(kt->rank_select(counts.data(), bins, k), expanded[k])
              << "bins " << bins << " k " << k << " isa " << to_string(kt->isa);
          const auto pair = kt->rank_select_pair(counts.data(), bins, k);
          ASSERT_EQ(pair.kth, expanded[k]) << "isa " << to_string(kt->isa);
          ASSERT_EQ(pair.next, expanded[k + 1]) << "isa " << to_string(kt->isa);
        }
      }
    }
  }
}

TEST(HistogramSelect, MatchesPartitionSelectionAndMaterializedQuantile) {
  // Three-way differential per (n, m, p, method): histogram select under
  // both kernel tables == partition select == quantile() on the
  // materialized resample. This is the crossover's byte-safety proof.
  rng::Xoshiro256 gen(21);
  for (const std::size_t n : {2u, 3u, 8u, 24u, 57u, 256u}) {
    const auto sorted = sorted_copy(lognormal_sample(n, 500 + n));
    std::vector<std::uint32_t> counts(n);
    for (const std::size_t m : {1u, 2u, 7u, 64u}) {
      std::vector<std::uint32_t> row(m);
      std::vector<double> resample(m);
      for (std::size_t i = 0; i < m; ++i) {
        row[i] = static_cast<std::uint32_t>(rng::uniform_below(gen, n));
        resample[i] = sorted[row[i]];
      }
      for (const auto method :
           {QuantileMethod::kR1InverseEcdf, QuantileMethod::kR6Weibull,
            QuantileMethod::kR7Linear}) {
        for (const double p : {0.0, 0.01, 0.25, 0.5, 0.75, 0.99, 1.0}) {
          const auto plan = make_quantile_plan(m, p, method);
          const double want = quantile(resample, p, method);
          for (const simd::Kernels* kt : {&simd::scalar_kernels(), &simd::dispatch()}) {
            ASSERT_EQ(histogram_select_quantile(row, sorted, counts, plan, *kt), want)
                << "n " << n << " m " << m << " p " << p
                << " isa " << to_string(kt->isa);
          }
          auto picks = row;
          ASSERT_EQ(selection_quantile(picks, sorted, plan), want)
              << "n " << n << " m " << m << " p " << p;
        }
      }
    }
  }
}

TEST(BootstrapEngine, IsaForcedOffIsByteIdenticalAcrossLanesAndReplicates) {
  // Engine-level half of the contract: a full distribution() run with
  // the ISA forced to scalar equals the auto-dispatched run byte for
  // byte, across n x R x lanes, for both SIMD-touched kinds.
  KernelStateGuard guard;
  const ResampleStat stats[] = {ResampleStat::mean(), ResampleStat::median()};
  for (const std::size_t n : {2u, 23u, 100u}) {
    const auto xs = lognormal_sample(n, 900 + n);
    for (const ResampleStat& stat : stats) {
      for (const std::size_t replicates : {7u, 250u}) {
        for (const std::size_t lanes : {1u, 3u, 8u}) {
          simd::reset_isa();
          BootstrapEngine auto_engine(ExecPolicy{1, lanes});
          std::vector<double> auto_out;
          auto_engine.distribution(xs, stat, replicates, 17, auto_out);

          simd::force_isa(simd::Isa::kScalar);
          BootstrapEngine scalar_engine(ExecPolicy{1, lanes});
          std::vector<double> scalar_out;
          scalar_engine.distribution(xs, stat, replicates, 17, scalar_out);
          ASSERT_EQ(scalar_out, auto_out)
              << "n=" << n << " R=" << replicates << " lanes=" << lanes;
        }
      }
    }
  }
}

TEST(BootstrapEngine, HistogramCrossoverNeverChangesBytes) {
  // The crossover is a speed knob only: force the histogram path off
  // (0) and always-on (max) and require identical distributions,
  // including the kMin/kMax plans the histogram path routes to min/max
  // scans.
  KernelStateGuard guard;
  const ResampleStat stats[] = {
      ResampleStat::median(), ResampleStat::quantile(0.9, QuantileMethod::kR6Weibull),
      ResampleStat::quantile(0.25, QuantileMethod::kR1InverseEcdf),
      ResampleStat::quantile(0.0, QuantileMethod::kR7Linear),
      ResampleStat::quantile(1.0, QuantileMethod::kR7Linear)};
  for (const std::size_t n : {2u, 23u, 300u}) {
    const auto xs = lognormal_sample(n, 1100 + n);
    for (const ResampleStat& stat : stats) {
      set_histogram_select_crossover(0);
      std::vector<double> partition_out;
      BootstrapEngine off(ExecPolicy{1, 4});
      off.distribution(xs, stat, 101, 23, partition_out);

      set_histogram_select_crossover(std::numeric_limits<std::size_t>::max());
      std::vector<double> histogram_out;
      BootstrapEngine on(ExecPolicy{1, 4});
      on.distribution(xs, stat, 101, 23, histogram_out);
      ASSERT_EQ(histogram_out, partition_out) << "n=" << n;
    }
  }
}

// ------------------------------------------- engine bit-determinism

TEST(BootstrapEngine, MatchesScalarReferenceAtEveryThreadAndLaneCount) {
  // The tentpole contract: output is a pure function of (data, stat,
  // replicates, seed, lanes). Threads shard lanes and never appear in
  // the answer; waves/selection/Kahan are invisible relative to the
  // naive per-lane oracle.
  const auto cases = stat_cases();
  for (const std::size_t n : {2u, 3u, 23u}) {
    const auto xs = lognormal_sample(n, 41 + n);
    for (const auto& sc : cases) {
      // Replicate counts: R < lanes, odd R, R % lanes != 0.
      for (const std::size_t replicates : {1u, 7u, 33u}) {
        for (const std::size_t lanes : {1u, 2u, 3u, 8u}) {
          const auto want =
              reference_multilane(xs, sc.generic, replicates, 17, lanes);
          for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
            BootstrapEngine engine(ExecPolicy{threads, lanes});
            std::vector<double> got;
            engine.distribution(xs, sc.fast, replicates, 17, got);
            ASSERT_EQ(got, want) << sc.name << " n=" << n << " R=" << replicates
                                 << " lanes=" << lanes << " threads=" << threads;
          }
        }
      }
    }
  }
}

TEST(BootstrapEngine, SingleLaneIsByteIdenticalToLegacyEntryPoints) {
  // lanes = 1 at any thread count == the historical single-stream path,
  // through the free-function conveniences as callers use them.
  const auto xs = lognormal_sample(31, 5);
  for (const auto& sc : stat_cases()) {
    const auto legacy = bootstrap_distribution(xs, sc.fast, 250, 0xb00f);
    const auto legacy_ci = bootstrap_percentile_ci(xs, sc.fast, 250, 0.95, 0xb00f);
    const auto legacy_bca = bootstrap_bca_ci(xs, sc.fast, 250, 0.95, 0xb00f);
    for (const std::size_t threads : {1u, 4u}) {
      const ExecPolicy policy{threads, 1};
      EXPECT_EQ(bootstrap_distribution(xs, sc.fast, 250, 0xb00f, policy), legacy)
          << sc.name;
      const auto ci = bootstrap_percentile_ci(xs, sc.fast, 250, 0.95, 0xb00f, policy);
      EXPECT_EQ(ci.lower, legacy_ci.lower) << sc.name;
      EXPECT_EQ(ci.upper, legacy_ci.upper) << sc.name;
      const auto bca = bootstrap_bca_ci(xs, sc.fast, 250, 0.95, 0xb00f, policy);
      EXPECT_EQ(bca.lower, legacy_bca.lower) << sc.name;
      EXPECT_EQ(bca.upper, legacy_bca.upper) << sc.name;
    }
  }
}

TEST(BootstrapEngine, BcaJackknifeIsThreadInvariant) {
  // The jackknife shards leave-one-out indices across the team; every
  // thread count must produce the single-thread bytes, for the O(n^2)
  // mean kernel, the O(n) quantile kernel, and the materialized kCustom
  // loop (whose callable runs concurrently and must be thread-safe).
  const auto xs = lognormal_sample(47, 13);
  for (const auto& sc : stat_cases()) {
    for (const std::size_t lanes : {1u, 8u}) {
      BootstrapEngine serial(ExecPolicy{1, lanes});
      const Interval want = serial.bca_ci(xs, sc.fast, 251, 0.9, 0xabc);
      for (const std::size_t threads : {2u, 8u}) {
        BootstrapEngine threaded(ExecPolicy{threads, lanes});
        const Interval got = threaded.bca_ci(xs, sc.fast, 251, 0.9, 0xabc);
        EXPECT_EQ(got.lower, want.lower)
            << sc.name << " lanes=" << lanes << " threads=" << threads;
        EXPECT_EQ(got.upper, want.upper)
            << sc.name << " lanes=" << lanes << " threads=" << threads;
      }
    }
  }
}

TEST(BootstrapEngine, ReusedEngineMatchesFreshEngineAcrossShapes) {
  // Scratch reuse across calls of different (n, R, stat) shapes must
  // never leak state between jobs.
  BootstrapEngine engine(ExecPolicy{2, 4});
  std::vector<double> got;
  for (const std::size_t n : {23u, 2u, 57u, 3u}) {
    const auto xs = lognormal_sample(n, 100 + n);
    for (const std::size_t replicates : {33u, 5u}) {
      for (const auto& sc : stat_cases()) {
        BootstrapEngine fresh(ExecPolicy{2, 4});
        std::vector<double> want;
        fresh.distribution(xs, sc.fast, replicates, 7, want);
        engine.distribution(xs, sc.fast, replicates, 7, got);
        ASSERT_EQ(got, want) << sc.name << " n=" << n << " R=" << replicates;
      }
    }
  }
}

TEST(BootstrapEngine, ValidatesInput) {
  BootstrapEngine engine(ExecPolicy{2, 4});
  std::vector<double> out;
  const std::vector<double> one = {1.0};
  const std::vector<double> ok = {1.0, 2.0, 3.0};
  EXPECT_THROW(engine.distribution(one, ResampleStat::mean(), 10, 1, out),
               std::invalid_argument);
  EXPECT_THROW(engine.distribution(ok, ResampleStat::mean(), 0, 1, out),
               std::invalid_argument);
}

// ---------------------------------------------- grouped entry points

TEST(GroupedStats, QuantileSummaryIsThreadInvariantAndMatchesScalar) {
  std::vector<std::vector<double>> groups;
  for (std::size_t g = 0; g < 9; ++g) {
    // Mix of rank-CI-eligible (n > 5) and fallback (n <= 5) groups.
    groups.push_back(lognormal_sample(g % 3 == 0 ? 4 : 40 + g, 7 * g + 1));
  }
  const auto want = grouped_quantile_summary(groups, 0.5, 0.95, ExecPolicy{1, 1});
  ASSERT_EQ(want.size(), groups.size());
  for (std::size_t g = 0; g < groups.size(); ++g) {
    EXPECT_EQ(want[g].value, quantile(groups[g], 0.5)) << "group " << g;
    EXPECT_EQ(want[g].n, groups[g].size());
    if (groups[g].size() > 5) {
      EXPECT_TRUE(want[g].ci_rank_based);
      const auto ci = quantile_confidence_interval(groups[g], 0.5, 0.95);
      EXPECT_EQ(want[g].ci.lower, ci.lower) << "group " << g;
      EXPECT_EQ(want[g].ci.upper, ci.upper) << "group " << g;
    } else {
      EXPECT_FALSE(want[g].ci_rank_based);
      EXPECT_EQ(want[g].ci.lower, min_value(groups[g]));
      EXPECT_EQ(want[g].ci.upper, max_value(groups[g]));
    }
  }
  for (const std::size_t threads : {2u, 4u, 8u}) {
    const auto got = grouped_quantile_summary(groups, 0.5, 0.95, ExecPolicy{threads, 1});
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t g = 0; g < want.size(); ++g) {
      EXPECT_EQ(got[g].value, want[g].value) << "threads " << threads;
      EXPECT_EQ(got[g].ci.lower, want[g].ci.lower) << "threads " << threads;
      EXPECT_EQ(got[g].ci.upper, want[g].ci.upper) << "threads " << threads;
    }
  }
}

TEST(GroupedStats, BootstrapPercentileCiIsThreadInvariant) {
  std::vector<std::vector<double>> storage;
  for (std::size_t g = 0; g < 5; ++g) storage.push_back(lognormal_sample(30 + g, g + 1));
  std::vector<std::span<const double>> groups(storage.begin(), storage.end());

  const auto want = grouped_bootstrap_percentile_ci(groups, ResampleStat::median(), 300,
                                                    0.95, 42, ExecPolicy{1, 4});
  ASSERT_EQ(want.size(), groups.size());
  for (const std::size_t threads : {2u, 8u}) {
    const auto got = grouped_bootstrap_percentile_ci(groups, ResampleStat::median(), 300,
                                                     0.95, 42, ExecPolicy{threads, 4});
    for (std::size_t g = 0; g < want.size(); ++g) {
      EXPECT_EQ(got[g].lower, want[g].lower) << "threads " << threads;
      EXPECT_EQ(got[g].upper, want[g].upper) << "threads " << threads;
    }
  }
}

TEST(GroupedStats, QuantileRegressionCiDefaultPolicyMatchesLegacyAndIsThreadInvariant) {
  // Two-level design: y = 1 + 2x + lognormal noise.
  rng::Xoshiro256 gen(3);
  std::vector<double> y;
  std::vector<std::vector<double>> design;
  for (std::size_t i = 0; i < 60; ++i) {
    const double x = static_cast<double>(i % 2);
    y.push_back(1.0 + 2.0 * x + rng::lognormal(gen, 0.0, 0.4));
    design.push_back({x});
  }
  const auto legacy = quantile_regression_bootstrap_ci(y, design, 0.5, 120, 0.95, 77);
  const auto explicit_default =
      quantile_regression_bootstrap_ci(y, design, 0.5, 120, 0.95, 77, ExecPolicy{1, 1});
  EXPECT_EQ(explicit_default.lower, legacy.lower);
  EXPECT_EQ(explicit_default.upper, legacy.upper);

  const auto lanes4 =
      quantile_regression_bootstrap_ci(y, design, 0.5, 120, 0.95, 77, ExecPolicy{1, 4});
  for (const std::size_t threads : {2u, 8u}) {
    const auto got = quantile_regression_bootstrap_ci(y, design, 0.5, 120, 0.95, 77,
                                                      ExecPolicy{threads, 4});
    EXPECT_EQ(got.lower, lanes4.lower) << "threads " << threads;
    EXPECT_EQ(got.upper, lanes4.upper) << "threads " << threads;
  }
}

// --------------------------------------------------- alloc audit

TEST(BootstrapEngine, WarmedDistributionIsAllocFree) {
  const auto xs = lognormal_sample(64, 9);
  for (const std::size_t lanes : {1u, 8u}) {
    BootstrapEngine engine(ExecPolicy{1, lanes});
    std::vector<double> out;
    const ResampleStat stats[] = {ResampleStat::mean(), ResampleStat::median()};
    for (const ResampleStat& stat : stats) {
      engine.distribution(xs, stat, 500, 3, out);  // warm-up: sizes scratch
      const std::size_t before = g_alloc_calls.load(std::memory_order_relaxed);
      engine.distribution(xs, stat, 500, 3, out);
      const std::size_t after = g_alloc_calls.load(std::memory_order_relaxed);
      EXPECT_EQ(after - before, 0u) << "lanes " << lanes;
    }
  }
}

TEST(BootstrapEngine, WarmedThreadedDistributionIsAllocFree) {
  // The fan-out path: the preconstructed region closure captures only
  // `this` (fits std::function's SBO) and ThreadTeam::run takes it by
  // reference, so even the threaded steady state stays off the heap.
  const auto xs = lognormal_sample(64, 9);
  BootstrapEngine engine(ExecPolicy{4, 8});
  std::vector<double> out;
  const ResampleStat stat = ResampleStat::median();
  engine.distribution(xs, stat, 500, 3, out);
  const std::size_t before = g_alloc_calls.load(std::memory_order_relaxed);
  engine.distribution(xs, stat, 500, 3, out);
  const std::size_t after = g_alloc_calls.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u);
}

}  // namespace
}  // namespace sci::stats
