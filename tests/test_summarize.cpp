#include <gtest/gtest.h>

#include <cmath>
#include "stats/summarize.hpp"

namespace sci::stats {
namespace {

TEST(Summarize, CostUsesArithmeticMean) {
  const Cost cost{{10.0, 100.0, 40.0}, "s"};
  const auto s = summarize(cost);
  EXPECT_NEAR(s.value, 50.0, 1e-12);
  EXPECT_STREQ(s.method, "arithmetic mean");
  EXPECT_TRUE(s.advisory.empty());
}

TEST(Summarize, RateUsesHarmonicMean) {
  const Rate rate{{10.0, 1.0, 2.5}, "Gflop/s"};
  const auto s = summarize(rate);
  EXPECT_NEAR(s.value, 2.0, 1e-12);
  EXPECT_STREQ(s.method, "harmonic mean");
}

TEST(Summarize, RatioUsesGeometricMeanWithAdvisory) {
  const Ratio ratio{{1.0, 0.1, 0.25}};
  const auto s = summarize(ratio);
  EXPECT_NEAR(s.value, std::cbrt(0.025), 1e-12);
  EXPECT_STREQ(s.method, "geometric mean");
  EXPECT_NE(s.advisory.find("Rule 4"), std::string::npos);
}

TEST(RateFromTotals, EqualsHarmonicForConstantWork) {
  const std::vector<double> work = {100.0, 100.0, 100.0};
  const std::vector<double> time = {10.0, 100.0, 40.0};
  EXPECT_NEAR(rate_from_totals(work, time), 2.0, 1e-12);
}

TEST(RateFromTotals, WeightsByWork) {
  // 100 units in 1 s + 900 units in 9 s -> 100/s overall.
  const std::vector<double> work = {100.0, 900.0};
  const std::vector<double> time = {1.0, 9.0};
  EXPECT_NEAR(rate_from_totals(work, time), 100.0, 1e-12);
}

TEST(RateFromTotals, Validation) {
  EXPECT_THROW((void)rate_from_totals({}, {}), std::invalid_argument);
  EXPECT_THROW((void)rate_from_totals(std::vector<double>{1.0}, std::vector<double>{1.0, 2.0}),
               std::invalid_argument);
  EXPECT_THROW((void)rate_from_totals(std::vector<double>{1.0}, std::vector<double>{0.0}),
               std::domain_error);
}

TEST(HplExample, ReproducesSection311Numbers) {
  // The paper's worked example: 100 Gflop, times (10, 100, 40) s,
  // peak 10 Gflop/s.
  const std::vector<double> times = {10.0, 100.0, 40.0};
  const auto s = hpl_example_summary(times, 100.0, 10.0);
  EXPECT_NEAR(s.arithmetic_mean_time, 50.0, 1e-12);
  EXPECT_NEAR(s.rate_from_mean_time, 2.0, 1e-12);
  EXPECT_NEAR(s.arithmetic_mean_of_rates, 4.5, 1e-12);
  EXPECT_NEAR(s.harmonic_mean_of_rates, 2.0, 1e-12);
  EXPECT_NEAR(s.geometric_mean_of_ratios, 0.2924, 1e-4);  // "0.29" in the paper
}

TEST(HplExample, WrongSummariesOverstate) {
  // The structural point of Rule 3: the arithmetic mean of rates always
  // overstates (or equals) the true aggregate rate.
  const std::vector<double> times = {2.0, 8.0, 32.0};
  const auto s = hpl_example_summary(times, 64.0, 100.0);
  EXPECT_GT(s.arithmetic_mean_of_rates, s.harmonic_mean_of_rates);
  EXPECT_NEAR(s.harmonic_mean_of_rates, s.rate_from_mean_time, 1e-12);
}

}  // namespace
}  // namespace sci::stats
