#include <gtest/gtest.h>

#include <set>

#include "survey/survey.hpp"

namespace sci::survey {
namespace {

TEST(Survey, PopulationCounts) {
  const auto& records = survey_records();
  EXPECT_EQ(records.size(), kTotalPapers);
  std::size_t applicable = 0;
  for (const auto& r : records) applicable += r.applicable;
  EXPECT_EQ(applicable, kApplicablePapers);  // 95 of 120, 25 n/a
}

TEST(Survey, CellStructure) {
  // 3 conferences x 4 years x 10 papers.
  for (std::size_t conf = 0; conf < kConferences; ++conf) {
    for (int year : kYears) {
      std::size_t count = 0;
      for (const auto& r : survey_records()) {
        count += (r.conference == conf && r.year == year);
      }
      EXPECT_EQ(count, kPapersPerCell);
    }
  }
}

TEST(Survey, DesignTotalsMatchTable1Exactly) {
  // The paper's published fractions: (79, 26, 60, 35, 20, 12, 48, 30, 7)/95.
  const auto expected = design_totals();
  for (std::size_t c = 0; c < kDesignClasses; ++c) {
    EXPECT_EQ(count_design(static_cast<DesignClass>(c)), expected[c])
        << to_string(static_cast<DesignClass>(c));
  }
}

TEST(Survey, AnalysisTotalsMatchTable1Exactly) {
  // (51, 13, 9, 17)/95.
  const auto expected = analysis_totals();
  for (std::size_t c = 0; c < kAnalysisClasses; ++c) {
    EXPECT_EQ(count_analysis(static_cast<AnalysisClass>(c)), expected[c])
        << to_string(static_cast<AnalysisClass>(c));
  }
}

TEST(Survey, NotApplicablePapersHaveNoMarks) {
  for (const auto& r : survey_records()) {
    if (!r.applicable) {
      EXPECT_EQ(r.design_score(), 0u);
      for (bool a : r.analysis) EXPECT_FALSE(a);
    }
  }
}

TEST(Survey, ScoresInRange) {
  for (const auto& r : survey_records()) {
    EXPECT_LE(r.design_score(), kDesignClasses);
  }
}

TEST(Survey, HardwareDocumentedMoreThanSoftware) {
  // The paper's headline: "most papers report details about the hardware
  // but fail to describe the software environment".
  EXPECT_GT(count_design(DesignClass::kProcessor), count_design(DesignClass::kCompiler));
  EXPECT_GT(count_design(DesignClass::kProcessor),
            count_design(DesignClass::kKernelLibraries));
  EXPECT_GT(count_design(DesignClass::kNic), count_design(DesignClass::kFilesystem));
}

TEST(Survey, CodeAvailabilityIsRarest) {
  const auto totals = design_totals();
  for (std::size_t c = 0; c + 1 < kDesignClasses; ++c) {
    EXPECT_GE(totals[c], totals[kDesignClasses - 1]);
  }
  EXPECT_EQ(count_design(DesignClass::kCodeAvailable), 7u);
}

TEST(Survey, CellScoreStatsWellFormed) {
  for (std::size_t conf = 0; conf < kConferences; ++conf) {
    for (int year : kYears) {
      const auto b = cell_score_stats(conf, year);
      EXPECT_GE(b.min, 0.0);
      EXPECT_LE(b.max, 9.0);
      EXPECT_LE(b.q1, b.median);
      EXPECT_LE(b.median, b.q3);
      EXPECT_GE(b.n, 7u);  // 10 minus at most 3 n/a
    }
  }
}

TEST(Survey, MediansByYearShape) {
  for (std::size_t conf = 0; conf < kConferences; ++conf) {
    const auto medians = conference_median_by_year(conf);
    EXPECT_EQ(medians.size(), 4u);
  }
}

TEST(Survey, NoSignificantTrendMatchesPaper) {
  // "While the median scores of ConfA and ConfC seem to be improving
  // over the years, there is no statistically significant evidence."
  for (std::size_t conf = 0; conf < kConferences; ++conf) {
    const auto medians = conference_median_by_year(conf);
    EXPECT_GT(mann_kendall(medians).p_value, 0.05) << "conference " << conf;
  }
}

TEST(MannKendall, DetectsCleanTrend) {
  const std::vector<double> rising = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_LT(mann_kendall(rising).p_value, 0.01);
  EXPECT_GT(mann_kendall(rising).s_statistic, 0.0);
  const std::vector<double> falling = {10, 9, 8, 7, 6, 5, 4, 3, 2, 1};
  EXPECT_LT(mann_kendall(falling).p_value, 0.01);
  EXPECT_LT(mann_kendall(falling).s_statistic, 0.0);
}

TEST(MannKendall, FlatSeriesNotSignificant) {
  const std::vector<double> flat = {5, 5, 5, 5, 5, 5};
  EXPECT_EQ(mann_kendall(flat).s_statistic, 0.0);
  EXPECT_GT(mann_kendall(flat).p_value, 0.9);
  const std::vector<double> tiny = {1, 2};
  EXPECT_EQ(mann_kendall(tiny).p_value, 1.0);  // too short to judge
}

TEST(Survey, TextFindingsConstants) {
  const auto f = text_findings();
  EXPECT_EQ(f.papers_reporting_speedup, 39u);
  EXPECT_EQ(f.speedups_without_base, 15u);
  EXPECT_NEAR(static_cast<double>(f.speedups_without_base) /
                  static_cast<double>(f.papers_reporting_speedup),
              0.38, 0.01);
  EXPECT_EQ(f.ci_reporting_papers, 2u);
}

TEST(Survey, Deterministic) {
  // Two accesses return the identical matrix (single static instance),
  // and the generation itself is seed-fixed: spot-check a few records.
  const auto& a = survey_records();
  const auto& b = survey_records();
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a[0].conference, 0u);
  EXPECT_EQ(a[119].conference, 2u);
  EXPECT_EQ(a[119].year, 2014);
}

}  // namespace
}  // namespace sci::survey
