#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "stats/descriptive.hpp"
#include "threads/barrier.hpp"
#include "threads/measure.hpp"
#include "threads/team.hpp"

namespace sci::threads {
namespace {

TEST(SpinBarrier, SinglePartyNeverBlocks) {
  SpinBarrier barrier(1);
  for (int i = 0; i < 100; ++i) barrier.arrive_and_wait();
  EXPECT_EQ(barrier.parties(), 1u);
}

TEST(SpinBarrier, NoThreadPassesEarly) {
  // Each round, every thread increments a counter before the barrier;
  // after the barrier the counter must equal parties * round.
  constexpr std::size_t kParties = 4;
  constexpr int kRounds = 200;
  SpinBarrier barrier(kParties);
  std::atomic<int> counter{0};
  std::atomic<int> violations{0};

  ThreadTeam team(kParties);
  team.run([&](std::size_t) {
    for (int round = 1; round <= kRounds; ++round) {
      counter.fetch_add(1);
      barrier.arrive_and_wait();
      if (counter.load() < round * static_cast<int>(kParties)) violations.fetch_add(1);
      barrier.arrive_and_wait();  // keep rounds separated
    }
  });
  EXPECT_EQ(violations.load(), 0);
  EXPECT_EQ(counter.load(), kRounds * static_cast<int>(kParties));
}

TEST(ThreadTeam, RunsRegionOnEveryWorker) {
  ThreadTeam team(3);
  std::vector<std::atomic<int>> hits(3);
  team.run([&](std::size_t id) { hits[id].fetch_add(1); });
  team.run([&](std::size_t id) { hits[id].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 2);
}

TEST(ThreadTeam, ParallelForCoversRangeExactlyOnce) {
  ThreadTeam team(4);
  std::vector<std::atomic<int>> touched(1000);
  team.parallel_for(0, 1000, [&](std::size_t i) { touched[i].fetch_add(1); });
  for (auto& t : touched) EXPECT_EQ(t.load(), 1);
  // Empty and degenerate ranges are no-ops.
  team.parallel_for(5, 5, [&](std::size_t) { FAIL(); });
  team.parallel_for(7, 3, [&](std::size_t) { FAIL(); });
}

TEST(ThreadTeam, ParallelForComputesCorrectSum) {
  ThreadTeam team(3);
  std::vector<double> data(10000);
  std::iota(data.begin(), data.end(), 1.0);
  std::vector<double> partial(3, 0.0);
  team.run([&](std::size_t id) {
    // Manual reduction: each worker sums its static chunk.
    const std::size_t chunk = (data.size() + 2) / 3;
    const std::size_t lo = id * chunk;
    const std::size_t hi = std::min(data.size(), lo + chunk);
    for (std::size_t i = lo; i < hi; ++i) partial[id] += data[i];
  });
  EXPECT_DOUBLE_EQ(partial[0] + partial[1] + partial[2], 10000.0 * 10001.0 / 2.0);
}

TEST(ThreadTeam, PropagatesExceptions) {
  ThreadTeam team(2);
  EXPECT_THROW(
      team.run([](std::size_t id) {
        if (id == 1) throw std::runtime_error("worker failure");
      }),
      std::runtime_error);
  // The team survives and runs the next region.
  std::atomic<int> ok{0};
  team.run([&](std::size_t) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 2);
}

TEST(ThreadTeam, Validation) { EXPECT_THROW(ThreadTeam(0), std::invalid_argument); }

TEST(MeasureThreaded, ShapesAndPositiveTimes) {
  std::atomic<std::uint64_t> work{0};
  ThreadedMeasurementOptions opts;
  opts.threads = 2;
  opts.iterations = 20;
  opts.warmup = 2;
  const auto m = measure_threaded(
      [&](std::size_t) {
        for (int i = 0; i < 2000; ++i) work.fetch_add(1, std::memory_order_relaxed);
      },
      opts);
  ASSERT_EQ(m.times_ns.size(), 20u);
  ASSERT_EQ(m.times_ns[0].size(), 2u);
  for (const auto& row : m.times_ns) {
    for (double t : row) EXPECT_GT(t, 0.0);
  }
  EXPECT_EQ(m.thread_series(1).size(), 20u);
  const auto mx = m.max_across_threads();
  for (std::size_t i = 0; i < mx.size(); ++i) {
    EXPECT_GE(mx[i], m.times_ns[i][0]);
    EXPECT_GE(mx[i], m.times_ns[i][1]);
  }
  // Warmup executed: total kernel invocations = threads * (iters+warmup).
  EXPECT_EQ(work.load(), 2000u * 2u * 22u);
}

TEST(MeasureThreaded, StartSkewRecorded) {
  ThreadedMeasurementOptions opts;
  opts.threads = 2;
  opts.iterations = 10;
  opts.window_s = 2e-3;  // generous window for an oversubscribed box
  const auto m = measure_threaded([](std::size_t) {}, opts);
  ASSERT_EQ(m.start_skew_ns.size(), 10u);
  for (double skew : m.start_skew_ns) EXPECT_GE(skew, 0.0);
  // With a shared clock the window scheme should usually start threads
  // within the window itself.
  EXPECT_LT(stats::median(m.start_skew_ns), 2e6 * 5);
}

TEST(MeasureThreaded, Validation) {
  EXPECT_THROW(measure_threaded(nullptr), std::invalid_argument);
  ThreadedMeasurementOptions opts;
  opts.threads = 0;
  EXPECT_THROW(measure_threaded([](std::size_t) {}, opts), std::invalid_argument);
}

}  // namespace
}  // namespace sci::threads
