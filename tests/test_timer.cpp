#include <gtest/gtest.h>

#include <memory>

#include "timer/calibration.hpp"
#include "timer/counters.hpp"
#include "timer/timer.hpp"

namespace sci::timer {
namespace {

TEST(SteadyClock, Monotonic) {
  const SteadyClock clock;
  double prev = clock.now_ns();
  for (int i = 0; i < 1000; ++i) {
    const double cur = clock.now_ns();
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

TEST(TscClock, MonotonicAndCalibrated) {
  const TscClock clock;
  double prev = clock.now_ns();
  for (int i = 0; i < 1000; ++i) {
    const double cur = clock.now_ns();
    EXPECT_GE(cur, prev);
    prev = cur;
  }
#if defined(__x86_64__)
  EXPECT_GT(clock.ns_per_tick(), 0.0);
  EXPECT_LT(clock.ns_per_tick(), 10.0);  // >= 100 MHz TSC
#endif
}

TEST(TscClock, AgreesWithSteadyClockOnIntervals) {
  const TscClock tsc;
  const SteadyClock steady;
  const double t0s = steady.now_ns();
  const double t0t = tsc.now_ns();
  // Busy wait ~3 ms.
  while (steady.now_ns() - t0s < 3e6) {
  }
  const double ds = steady.now_ns() - t0s;
  const double dt = tsc.now_ns() - t0t;
  EXPECT_NEAR(dt / ds, 1.0, 0.05);
}

TEST(Stopwatch, MeasuresElapsedTime) {
  const SteadyClock clock;
  Stopwatch sw(clock);
  const double t0 = clock.now_ns();
  while (clock.now_ns() - t0 < 1e6) {
  }
  const double ns = sw.elapsed_ns();
  EXPECT_GE(ns, 1e6);
  // elapsed_s() is a later reading: monotone and close (two separate reads).
  EXPECT_GE(sw.elapsed_s(), ns * 1e-9);
  EXPECT_NEAR(sw.elapsed_s(), ns * 1e-9, 1e-4);
  sw.restart();
  EXPECT_LT(sw.elapsed_ns(), 1e6);
}

TEST(Calibration, ReportsPlausibleNumbers) {
  const TscClock clock;
  const auto cal = calibrate(clock, 5000);
  EXPECT_EQ(cal.clock_name, "tsc");
  EXPECT_GT(cal.resolution_ns, 0.0);
  EXPECT_LT(cal.resolution_ns, 1e6);  // sub-millisecond for sure
  EXPECT_GE(cal.overhead_ns, 0.0);
  EXPECT_LT(cal.overhead_ns, 1e5);
}

TEST(Calibration, IntervalChecksFollowThresholds) {
  Calibration cal;
  cal.resolution_ns = 10.0;
  cal.overhead_ns = 50.0;
  // Long interval: both fine.
  const auto ok = check_interval(cal, 1e6);
  EXPECT_TRUE(ok.overhead_ok);
  EXPECT_TRUE(ok.precision_ok);
  EXPECT_TRUE(ok.message.empty());
  // Interval shorter than 20x overhead: overhead violation (5% rule).
  const auto bad_overhead = check_interval(cal, 500.0);
  EXPECT_FALSE(bad_overhead.overhead_ok);
  EXPECT_FALSE(bad_overhead.message.empty());
  // Interval shorter than 10x resolution: precision violation.
  const auto bad_precision = check_interval(cal, 80.0);
  EXPECT_FALSE(bad_precision.precision_ok);
}

TEST(SoftwareCounter, AccumulatesAndResets) {
  SoftwareCounter flops("flop");
  EXPECT_EQ(flops.read(), 0u);
  flops.add(100);
  flops.add(23);
  EXPECT_EQ(flops.read(), 123u);
  flops.reset();
  EXPECT_EQ(flops.read(), 0u);
  EXPECT_EQ(flops.name(), "flop");
}

TEST(CounterSet, MeasuresDeltas) {
  auto flops = std::make_shared<SoftwareCounter>("flop");
  auto loads = std::make_shared<SoftwareCounter>("load");
  CounterSet set;
  set.attach(flops);
  set.attach(loads);
  flops->add(1000);  // before the interval: excluded
  set.start();
  flops->add(500);
  loads->add(7);
  const auto readings = set.stop();
  ASSERT_EQ(readings.size(), 2u);
  EXPECT_EQ(readings[0].name, "flop");
  EXPECT_EQ(readings[0].delta, 500u);
  EXPECT_EQ(readings[1].delta, 7u);
}

}  // namespace
}  // namespace sci::timer
