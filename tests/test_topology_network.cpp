#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"
#include "sim/machine.hpp"
#include "sim/network.hpp"
#include "sim/topology.hpp"

namespace sci::sim {
namespace {

TEST(Dragonfly, HopStructure) {
  const Dragonfly topo(4, 4, 2);  // 32 nodes
  EXPECT_EQ(topo.node_count(), 32u);
  EXPECT_EQ(topo.hops(0, 0), 0u);
  EXPECT_EQ(topo.hops(0, 1), 1u);   // same router
  EXPECT_EQ(topo.hops(0, 2), 2u);   // same group, different router
  EXPECT_EQ(topo.hops(0, 8), 3u);   // different group
  EXPECT_EQ(topo.hops(31, 0), 3u);
}

TEST(Dragonfly, HopsSymmetric) {
  const Dragonfly topo(4, 4, 2);
  rng::Xoshiro256 gen(1);
  for (int i = 0; i < 200; ++i) {
    const auto a = rng::uniform_below(gen, 32);
    const auto b = rng::uniform_below(gen, 32);
    EXPECT_EQ(topo.hops(a, b), topo.hops(b, a));
  }
}

TEST(Dragonfly, OutOfRangeThrows) {
  const Dragonfly topo(2, 2, 2);
  EXPECT_THROW((void)topo.hops(0, 8), std::out_of_range);
}

TEST(FatTree, HopStructure) {
  const FatTree topo(4, 3);  // 64 nodes
  EXPECT_EQ(topo.node_count(), 64u);
  EXPECT_EQ(topo.hops(0, 0), 0u);
  EXPECT_EQ(topo.hops(0, 1), 2u);    // same leaf switch
  EXPECT_EQ(topo.hops(0, 4), 4u);    // one level up
  EXPECT_EQ(topo.hops(0, 16), 6u);   // two levels up
  EXPECT_EQ(topo.hops(0, 63), 6u);
}

TEST(FatTree, HopsSymmetricAndBounded) {
  const FatTree topo(8, 2);
  rng::Xoshiro256 gen(2);
  for (int i = 0; i < 200; ++i) {
    const auto a = rng::uniform_below(gen, topo.node_count());
    const auto b = rng::uniform_below(gen, topo.node_count());
    EXPECT_EQ(topo.hops(a, b), topo.hops(b, a));
    EXPECT_LE(topo.hops(a, b), 4u);  // 2 levels max
  }
}

TEST(Allocation, PackedIsContiguous) {
  const Dragonfly topo(4, 4, 4);  // 64 nodes
  rng::Xoshiro256 gen(3);
  const auto nodes = allocate_nodes(topo, 16, AllocationPolicy::kPacked, gen);
  ASSERT_EQ(nodes.size(), 16u);
  for (std::size_t i = 1; i < nodes.size(); ++i) EXPECT_EQ(nodes[i], nodes[i - 1] + 1);
}

TEST(Allocation, ScatteredIsDistinct) {
  const Dragonfly topo(4, 4, 4);
  rng::Xoshiro256 gen(4);
  const auto nodes = allocate_nodes(topo, 32, AllocationPolicy::kScattered, gen);
  const std::set<std::size_t> unique(nodes.begin(), nodes.end());
  EXPECT_EQ(unique.size(), 32u);
  for (auto n : nodes) EXPECT_LT(n, 64u);
}

TEST(Allocation, DifferentSeedsDifferentAllocations) {
  const Dragonfly topo(8, 8, 4);
  rng::Xoshiro256 g1(5), g2(6);
  const auto a = allocate_nodes(topo, 16, AllocationPolicy::kScattered, g1);
  const auto b = allocate_nodes(topo, 16, AllocationPolicy::kScattered, g2);
  EXPECT_NE(a, b);
}

TEST(Allocation, Validation) {
  const Dragonfly topo(2, 2, 2);
  rng::Xoshiro256 gen(7);
  EXPECT_THROW(allocate_nodes(topo, 0, AllocationPolicy::kPacked, gen),
               std::invalid_argument);
  EXPECT_THROW(allocate_nodes(topo, 9, AllocationPolicy::kPacked, gen),
               std::invalid_argument);
}

TEST(Network, IdealTransferFormula) {
  auto topo = std::make_shared<Dragonfly>(4, 4, 2);
  const LogGPParams params{.latency_s = 1e-6,
                           .overhead_s = 2e-7,
                           .gap_per_msg_s = 1e-7,
                           .gap_per_byte_s = 1e-9,
                           .hop_latency_s = 5e-8};
  const Network net(topo, params, {});
  // Same router: 1 hop. 65 bytes -> 64 * G payload term.
  EXPECT_NEAR(net.ideal_transfer_time(0, 1, 65), 1e-6 + 5e-8 + 64e-9, 1e-15);
  // Zero and one byte degenerate to pure latency.
  EXPECT_NEAR(net.ideal_transfer_time(0, 1, 0), 1e-6 + 5e-8, 1e-15);
  EXPECT_NEAR(net.ideal_transfer_time(0, 1, 1), 1e-6 + 5e-8, 1e-15);
  // More hops cost more.
  EXPECT_GT(net.ideal_transfer_time(0, 8, 64), net.ideal_transfer_time(0, 1, 64));
}

TEST(Network, NoiselessTransferEqualsIdeal) {
  auto machine = make_noiseless(8);
  const auto net = machine.make_network();
  rng::Xoshiro256 gen(8);
  EXPECT_EQ(net.transfer_time(0, 1, 64, gen), net.ideal_transfer_time(0, 1, 64));
}

TEST(Network, NoisyTransferAtLeastIdeal) {
  auto machine = make_dora();
  const auto net = machine.make_network();
  rng::Xoshiro256 gen(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(net.transfer_time(0, 40, 64, gen), net.ideal_transfer_time(0, 40, 64));
  }
}

TEST(Machines, PresetsConstructAndDiffer) {
  const auto daint = make_daint();
  const auto dora = make_dora();
  const auto pilatus = make_pilatus();
  EXPECT_EQ(daint.name, "daint");
  EXPECT_GT(daint.topology->node_count(), 64u);
  EXPECT_GT(dora.topology->node_count(), 64u);
  EXPECT_EQ(pilatus.topology->node_count(), 256u);
  EXPECT_NE(daint.node_peak_flops, dora.node_peak_flops);
  EXPECT_EQ(make_machine("dora").name, "dora");
  EXPECT_THROW(make_machine("summit"), std::invalid_argument);
}

TEST(Machines, NoiselessIsTrulyNoiseless) {
  const auto m = make_noiseless(4);
  rng::Xoshiro256 gen(10);
  EXPECT_EQ(m.compute_noise.perturb(1.0, gen), 1.0);
  EXPECT_EQ(m.net_noise.perturb(1e-6, gen), 1e-6);
  EXPECT_EQ(m.clock_drift_ppm_sigma, 0.0);
}

}  // namespace
}  // namespace sci::sim
