// scibench_ci: continuous performance gate over BENCH_*.json reports.
//
//   scibench_ci ingest --history FILE <report.json | dir>...
//   scibench_ci check  --history FILE [--markdown OUT] [--html OUT]
//   scibench_ci gate   --history FILE [--markdown OUT] [--html OUT] <report.json | dir>...
//
// `ingest` appends every metric point of the given reports (directories
// are scanned for BENCH_*.json) into the append-only JSONL history;
// re-ingesting the same (git sha, bench, metric) is a no-op. `check`
// runs the detection battery (ci/detect.hpp: CI-overlap gate,
// Kruskal-Wallis change point, quantile-regression trend) over the
// stored series and prints the markdown dashboard; `gate` is ingest
// followed by check -- the one-shot CI entry point.
//
// Detection knobs: --alpha P (default 0.05), --min-effect F (relative
// change floor, default 0.05), --baseline-window N (default 8),
// --min-points N (default 4).
//
// Exit codes: 0 clean, 1 usage or I/O error, 2 at least one metric
// flagged as a regression (check/gate only) -- the code a CI job should
// treat as "fail the PR".
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "ci/dashboard.hpp"
#include "ci/detect.hpp"
#include "ci/history.hpp"
#include "obs/bench_report.hpp"

namespace fs = std::filesystem;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <command> [options] [inputs...]\n"
               "commands:\n"
               "  ingest --history FILE <report.json | dir>...\n"
               "  check  --history FILE [--markdown OUT] [--html OUT]\n"
               "  gate   --history FILE [--markdown OUT] [--html OUT] <report.json | dir>...\n"
               "options: --alpha P  --min-effect F  --baseline-window N  --min-points N\n"
               "         --threads N (parallel per-metric analysis; same output bytes)\n"
               "exit: 0 clean, 1 usage/IO error, 2 regression detected\n",
               argv0);
  return 1;
}

/// Expands an input path: a directory yields its BENCH_*.json files
/// (sorted for deterministic ingest order), a file yields itself.
std::vector<std::string> expand_input(const std::string& input) {
  std::vector<std::string> out;
  std::error_code ec;
  if (fs::is_directory(input, ec)) {
    for (const auto& entry : fs::directory_iterator(input, ec)) {
      if (!entry.is_regular_file()) continue;
      const std::string name = entry.path().filename().string();
      if (name.rfind("BENCH_", 0) == 0 && name.size() > 5 &&
          name.compare(name.size() - 5, 5, ".json") == 0) {
        out.push_back(entry.path().string());
      }
    }
    std::sort(out.begin(), out.end());
  } else {
    out.push_back(input);
  }
  return out;
}

struct Args {
  std::string command;
  std::string history;
  std::string markdown_out;
  std::string html_out;
  sci::ci::DetectionOptions detect;
  std::vector<std::string> inputs;
};

bool parse_args(int argc, char** argv, Args& args) {
  if (argc < 2) return false;
  args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* { return ++i < argc ? argv[i] : nullptr; };
    if (a == "--history") {
      const char* v = next();
      if (v == nullptr) return false;
      args.history = v;
    } else if (a == "--markdown") {
      const char* v = next();
      if (v == nullptr) return false;
      args.markdown_out = v;
    } else if (a == "--html") {
      const char* v = next();
      if (v == nullptr) return false;
      args.html_out = v;
    } else if (a == "--alpha") {
      const char* v = next();
      if (v == nullptr) return false;
      args.detect.alpha = std::strtod(v, nullptr);
    } else if (a == "--min-effect") {
      const char* v = next();
      if (v == nullptr) return false;
      args.detect.min_effect = std::strtod(v, nullptr);
    } else if (a == "--baseline-window") {
      const char* v = next();
      if (v == nullptr) return false;
      args.detect.baseline_window = static_cast<std::size_t>(std::strtoul(v, nullptr, 10));
    } else if (a == "--min-points") {
      const char* v = next();
      if (v == nullptr) return false;
      args.detect.min_points = static_cast<std::size_t>(std::strtoul(v, nullptr, 10));
    } else if (a == "--threads") {
      // Shards per-metric analysis across workers; findings (and every
      // output byte) are identical at any thread count.
      const char* v = next();
      if (v == nullptr) return false;
      args.detect.policy.threads = static_cast<std::size_t>(std::strtoul(v, nullptr, 10));
    } else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr, "unknown option: %s\n", a.c_str());
      return false;
    } else {
      args.inputs.push_back(a);
    }
  }
  return !args.history.empty();
}

int do_ingest(sci::ci::HistoryStore& store, const std::vector<std::string>& inputs) {
  std::size_t reports = 0, appended = 0;
  for (const auto& input : inputs) {
    for (const auto& file : expand_input(input)) {
      try {
        const sci::obs::BenchReport report = sci::obs::load_bench_report(file);
        appended += store.ingest(report);
        ++reports;
      } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s: %s\n", file.c_str(), e.what());
        return 1;
      }
    }
  }
  std::printf("ingested %zu report%s, appended %zu point%s (history: %zu total)\n",
              reports, reports == 1 ? "" : "s", appended, appended == 1 ? "" : "s",
              store.points().size());
  return 0;
}

int do_check(const sci::ci::HistoryStore& store, const Args& args) {
  const std::vector<sci::ci::MetricSeries> series = store.series();
  const std::vector<sci::ci::Finding> findings =
      sci::ci::analyze_all(series, args.detect);

  const std::string markdown = sci::ci::render_markdown_dashboard(findings, series);
  std::fputs(markdown.c_str(), stdout);
  if (!args.markdown_out.empty()) {
    sci::obs::write_file_atomic(args.markdown_out, markdown);
  }
  if (!args.html_out.empty()) {
    sci::obs::write_file_atomic(args.html_out,
                                sci::ci::render_html_dashboard(findings, series));
  }
  if (store.skipped_lines() > 0) {
    std::fprintf(stderr, "warning: %zu corrupt history line%s skipped during load\n",
                 store.skipped_lines(), store.skipped_lines() == 1 ? "" : "s");
  }
  // A baseline window whose rank CI collapsed to [min, max] makes the
  // overlap gate near-blind for that series: the widest expressible
  // interval overlaps almost anything. Warn (exit code unchanged) so a
  // "stable" verdict on a short/noisy window is read with suspicion.
  for (const auto& f : findings) {
    if (f.baseline_ci_degenerate) {
      std::fprintf(stderr,
                   "warning: %s/%s baseline CI degenerated to [min, max] over the "
                   "window; the overlap gate has little power here until more "
                   "history accumulates\n",
                   f.bench.c_str(), f.metric.c_str());
    }
  }
  if (sci::ci::any_regression(findings)) {
    std::fprintf(stderr, "REGRESSION detected -- see dashboard above\n");
    return 2;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse_args(argc, argv, args)) return usage(argv[0]);

  try {
    if (args.command == "ingest") {
      if (args.inputs.empty()) return usage(argv[0]);
      sci::ci::HistoryStore store(args.history);
      return do_ingest(store, args.inputs);
    }
    if (args.command == "check") {
      if (!args.inputs.empty()) return usage(argv[0]);
      const sci::ci::HistoryStore store(args.history);
      return do_check(store, args);
    }
    if (args.command == "gate") {
      if (args.inputs.empty()) return usage(argv[0]);
      sci::ci::HistoryStore store(args.history);
      const int rc = do_ingest(store, args.inputs);
      if (rc != 0) return rc;
      return do_check(store, args);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage(argv[0]);
}
