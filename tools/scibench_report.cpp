// scibench_report: analyze a measurement CSV from the command line.
//
//   scibench_report [--markdown] [--strict] [--threads N] data.csv [column]
//
// Reads a CSV (as written by core::Dataset or any plain numeric CSV
// with a header row; '#' comment lines are ignored) through
// exec::load_measurements, summarizes the selected column per the
// paper's rules -- deterministic check, Shapiro-Wilk, Ljung-Box iid
// diagnostic, median + rank CI, tail percentiles -- and renders density
// and Q-Q plots. Campaign exports (exec samples_dataset layout) are
// regrouped automatically: one summarized series per grid cell instead
// of one undifferentiated column. Exit code 0 on success, 1 on usage or
// I/O errors (malformed cells are reported with file/line/column); with
// --strict, a campaign export carrying failed or unexecuted cells exits
// 2 after printing the damage report -- the mode CI jobs use so a
// partially-failed campaign cannot pass as a thinner grid. This is the
// "analyze my existing numbers soundly" entry point for users who
// measured elsewhere.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

#include "core/dataset.hpp"
#include "core/measurement.hpp"
#include "core/plots.hpp"
#include "core/report.hpp"
#include "exec/ingest.hpp"
#include "obs/counters.hpp"
#include "stats/confidence.hpp"
#include "stats/descriptive.hpp"

namespace {

/// "key=value" token lookup in a stopping-policy description like
/// "sequential quantile=0.5 target=0.05 ... max_reps=64 ...".
double policy_value(const std::string& text, const std::string& key, double fallback) {
  const std::string needle = key + "=";
  const std::size_t pos = text.find(needle);
  if (pos == std::string::npos) return fallback;
  char* end = nullptr;
  const double v = std::strtod(text.c_str() + pos + needle.size(), &end);
  return end == text.c_str() + pos + needle.size() ? fallback : v;
}

/// Per-config stop lines for a sequential-stopping campaign export:
/// which configs stopped early, at how many reps, and how tight the
/// pooled rank CI actually is. Fixed-arity campaigns print nothing.
void print_measurement_control(const sci::exec::Ingested& ingested,
                               const sci::stats::ExecPolicy& policy) {
  if (ingested.stopping.empty()) return;
  std::printf("measurement control: %s (%zu round%s)\n", ingested.stopping.c_str(),
              ingested.rounds, ingested.rounds == 1 ? "" : "s");
  const double quantile = policy_value(ingested.stopping, "quantile", 0.5);
  const double confidence = policy_value(ingested.stopping, "confidence", 0.95);
  const auto max_reps =
      static_cast<std::size_t>(policy_value(ingested.stopping, "max_reps", 0.0));

  // One sort per config, center + rank CI from the same sorted pool,
  // sharded over --threads workers; bytes are identical at any count.
  const auto summaries =
      sci::exec::summarize_configs(ingested, quantile, confidence, policy);
  for (const auto& cs : summaries) {
    std::string ci_text = "CI n/a (n too small)";
    if (cs.summary.ci_rank_based && cs.summary.value != 0.0) {
      const double center = cs.summary.value;
      const double half =
          std::max(cs.summary.ci.upper - center, center - cs.summary.ci.lower) /
          std::fabs(center);
      char buf[64];
      std::snprintf(buf, sizeof buf, "CI +-%.1f%%", half * 100.0);
      ci_text = buf;
    }
    if (max_reps != 0 && cs.reps < max_reps) {
      std::printf("  config %zu: stopped early at %zu/%zu reps, %s (n=%zu samples)\n",
                  cs.config, cs.reps, max_reps, ci_text.c_str(), cs.summary.n);
    } else {
      std::printf("  config %zu: %zu reps (cap reached), %s (n=%zu samples)\n",
                  cs.config, cs.reps, ci_text.c_str(), cs.summary.n);
    }
  }
  std::printf("\n");
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--markdown] [--strict] [--threads N] <file.csv> [column]\n"
               "  column defaults to the last one; '#' lines are ignored\n"
               "  --markdown: emit a paste-ready GitHub-flavored report\n"
               "  --strict:   exit 2 if the campaign export has failed or\n"
               "              unexecuted (interrupted) cells\n"
               "  --threads:  worker threads for per-config summarization\n"
               "              (output is byte-identical at any count)\n",
               argv0);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool markdown = false;
  bool strict = false;
  sci::stats::ExecPolicy policy;
  int arg = 1;
  while (arg < argc && argv[arg][0] == '-') {
    const std::string flag = argv[arg];
    if (flag == "--markdown") {
      markdown = true;
    } else if (flag == "--strict") {
      strict = true;
    } else if (flag == "--threads" && arg + 1 < argc) {
      policy.threads = static_cast<std::size_t>(std::strtoul(argv[++arg], nullptr, 10));
    } else {
      return usage(argv[0]);
    }
    ++arg;
  }
  if (argc - arg < 1 || argc - arg > 2) return usage(argv[0]);
  const std::string path = argv[arg];

  const sci::exec::Ingested ingested = [&] {
    try {
      return sci::exec::load_measurements(path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      std::exit(1);
    }
  }();
  const sci::core::Dataset& ds = ingested.dataset;

  // Partially-failed campaign exports carry their damage report in the
  // header (campaign.failed / campaign.failed_cells); surface it up
  // front so missing cells read as documented failures, not as a
  // thinner grid.
  if (ingested.failed > 0) {
    std::printf("WARNING: %zu cell%s failed during the campaign%s%s\n",
                ingested.failed, ingested.failed > 1 ? "s" : "",
                ingested.failed_cells.empty() ? "" : ":\n  ",
                ingested.failed_cells.c_str());
  }
  if (ingested.interrupted > 0) {
    std::printf("WARNING: campaign was interrupted with %zu cell%s unexecuted; "
                "resume it with the same journal to complete the grid\n",
                ingested.interrupted, ingested.interrupted > 1 ? "s" : "");
  }
  if (ingested.failed > 0 || ingested.interrupted > 0) std::printf("\n");
  // --strict turns the damage report into a gate: the report still
  // prints, but the exit code refuses to bless an incomplete grid.
  const bool damaged = ingested.failed > 0 || ingested.interrupted > 0;
  const int exit_code = strict && damaged ? 2 : 0;

  if (ds.rows() == 0) {
    // A campaign whose cells ALL failed still exports a valid (empty)
    // samples CSV; with the accounting above that is a report, not an
    // error -- aborting here would hide the explanation.
    if (damaged) {
      std::printf("%s: no successful cells to summarize\n", path.c_str());
      return exit_code;
    }
    std::fprintf(stderr, "error: %s holds no data rows\n", path.c_str());
    return 1;
  }

  const bool campaign = ingested.campaign && argc - arg == 1;
  const std::string column =
      (argc - arg == 2) ? argv[arg + 1] : ds.columns().back();
  std::vector<double> values;
  try {
    values = ds.column(column);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\navailable columns:", e.what());
    for (const auto& c : ds.columns()) std::fprintf(stderr, " %s", c.c_str());
    std::fprintf(stderr, "\n");
    return 1;
  }

  if (campaign) {
    std::printf("%s: campaign export, %zu cells, %zu observations\n\n", path.c_str(),
                ingested.cells.size(), values.size());
    print_measurement_control(ingested, policy);
  } else {
    std::printf("%s: column '%s', %zu observations\n\n", path.c_str(), column.c_str(),
                values.size());
  }

  sci::core::Experiment e;
  e.name = path + ":" + column;
  e.description = "external dataset analyzed by scibench_report";
  e.set("source", path);
  sci::core::ReportBuilder report(e);
  if (campaign) {
    // One rule-conforming summary per grid cell, in (config, rep) order.
    for (const auto& cell : ingested.cells) {
      report.add_series({cell.label, "(file units)", cell.values});
    }
  } else {
    report.add_series({column, "(file units)", values});
  }

  // Provenance footer: datasets written with Dataset::enable_provenance
  // carry per-row counter deltas; sum them back into run totals so the
  // report keeps its production story (Rule 9). Live registry counters
  // (nonzero only when this process itself measured) ride along.
  sci::obs::CounterSnapshot counters;
  for (const auto& c : ds.columns()) {
    if (c.rfind("prov_", 0) != 0 || c == "prov_trace_id") continue;
    double sum = 0.0;
    for (double v : ds.column(c)) sum += v;
    if (c == "prov_harness_overhead_s") {
      counters.emplace_back("csv.harness_overhead_ns",
                            static_cast<std::uint64_t>(sum * 1e9 + 0.5));
    } else {
      counters.emplace_back("csv." + c.substr(5), static_cast<std::uint64_t>(sum + 0.5));
    }
  }
  for (const auto& [name, value] : sci::obs::CounterRegistry::instance().snapshot()) {
    if (value != 0) counters.emplace_back(name, value);
  }
  if (!counters.empty()) report.set_counter_summary(std::move(counters));
  if (markdown) {
    std::fputs(report.render_markdown().c_str(), stdout);
    return exit_code;
  }
  std::fputs(report.render().c_str(), stdout);

  if (values.size() >= 8 && sci::stats::min_value(values) < sci::stats::max_value(values)) {
    sci::core::PlotOptions opts;
    opts.title = column + " density";
    std::fputs(sci::core::render_density(values, opts).c_str(), stdout);
    std::printf("\n");
    opts.title = column + " normal Q-Q";
    opts.height = 10;
    std::fputs(sci::core::render_qq(values, opts).c_str(), stdout);
  }
  return exit_code;
}
