// scibench_submit: client for the scibenchd campaign service.
//
// Reads one "scibench.campaign" envelope line (a file or stdin), sends
// it to the daemon with the run options, and streams the daemon's event
// lines to stdout until the job reaches a terminal state.
//
// Extras that make the byte-identity contract checkable from a shell:
//   --emit-demo NAME   print a ready-made envelope line and exit
//                      (pingpong | pingpong-seq | faulty | crashy)
//   --local            skip the daemon: run the envelope in-process
//                      through CampaignRunner with the same options.
//                      `cmp` the CSVs of --local against the daemon's
//                      to verify byte-identical results at any worker
//                      count (the invariant CI's daemon-smoke job pins).
//
// Exit codes: 0 done (no failed cells), 1 done with failures or run
// error, 2 rejected/usage, 3 interrupted (journal resumable).
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "exec/interrupt.hpp"
#include "exec/runner.hpp"
#include "exec/service.hpp"
#include "exec/sim_backend.hpp"
#include "exec/wire.hpp"
#include "obs/json.hpp"

namespace exec = sci::exec;
namespace json = sci::obs::json;

namespace {

std::string demo_envelope(const std::string& name) {
  exec::CampaignSpec spec;
  exec::SimBackendOptions backend;
  spec.base.name = "scibenchd demo";
  spec.base.description = "wire-format demo campaign";
  spec.base.environment["transport"] = "scibenchd unix socket";
  backend.kernel = exec::SimKernel::kPingPong;
  backend.samples = 200;
  backend.scale = 1e6;
  backend.unit = "us";
  if (name == "pingpong" || name == "pingpong-seq") {
    spec.name = "demo-pingpong";
    spec.factors.push_back({"message_bytes", {"1024", "4096", "16384"}});
    spec.replications = 5;
    if (name == "pingpong-seq") {
      spec.stopping = exec::StoppingPolicy::sequential_ci(0.05, 3, 10);
    }
  } else if (name == "faulty") {
    // One grid column aborts the worker: exercises crash containment.
    spec.name = "demo-faulty";
    spec.factors.push_back({"message_bytes", {"1024", "4096"}});
    spec.factors.push_back({"worker_fault", {"none", "abort"}});
    spec.replications = 3;
  } else if (name == "crashy") {
    // First worker to see $SCIBENCH_WORKER_KILL_FILE dies mid-cell.
    spec.name = "demo-crashy";
    spec.factors.push_back({"message_bytes", {"1024", "4096", "16384"}});
    spec.factors.push_back({"worker_fault", {"kill_once"}});
    spec.replications = 5;
  } else {
    throw std::runtime_error("unknown demo \"" + name +
                             "\" (pingpong | pingpong-seq | faulty | crashy)");
  }
  return exec::wire::campaign_to_json(spec, backend);
}

int run_local(const exec::wire::CampaignEnvelope& envelope,
              const exec::Submission& sub, bool quiet) {
  exec::SimBackend backend(envelope.backend);
  exec::CampaignRunnerOptions ropts;
  ropts.journal_path = sub.journal_path;
  ropts.max_attempts = sub.max_attempts;
  ropts.metrics_path = sub.metrics_path;
  ropts.interrupt = exec::interrupt_flag();
  exec::CampaignRunner runner(backend, exec::Campaign(envelope.spec), ropts);
  const exec::CampaignResult result = runner.run();
  if (!sub.samples_csv.empty()) result.samples_dataset().save_csv(sub.samples_csv);
  if (!sub.summary_csv.empty()) result.summary_dataset().save_csv(sub.summary_csv);
  if (!quiet) {
    std::fprintf(stderr, "local: %zu cells, %zu executed, %zu failed\n",
                 result.cells.size(), result.executed, result.failed);
  }
  if (result.interrupted > 0) return exec::kInterruptedExitCode;
  return result.failed > 0 ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  std::string campaign_file = "-";
  std::string header = "{\"op\": \"submit\"";
  bool local = false;
  bool quiet = false;
  exec::Submission sub;  // only used by --local; mirrors the header

  const auto add_str = [&](const char* key, const std::string& value) {
    header += ", \"";
    header += key;
    header += "\": " + json::quoted(value);
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "scibench_submit: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--emit-demo") {
      try {
        std::printf("%s\n", demo_envelope(next()).c_str());
        return 0;
      } catch (const std::exception& e) {
        std::fprintf(stderr, "scibench_submit: %s\n", e.what());
        return 2;
      }
    } else if (arg == "--socket") {
      socket_path = next();
    } else if (arg == "--campaign") {
      campaign_file = next();
    } else if (arg == "--local") {
      local = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--priority") {
      const int p = std::atoi(next());
      header += ", \"priority\": " + std::to_string(p);
      sub.priority = p;
    } else if (arg == "--journal") {
      sub.journal_path = next();
      add_str("journal", sub.journal_path);
    } else if (arg == "--samples-csv") {
      sub.samples_csv = next();
      add_str("samples_csv", sub.samples_csv);
    } else if (arg == "--summary-csv") {
      sub.summary_csv = next();
      add_str("summary_csv", sub.summary_csv);
    } else if (arg == "--metrics") {
      sub.metrics_path = next();
      add_str("metrics", sub.metrics_path);
    } else if (arg == "--max-attempts") {
      sub.max_attempts = static_cast<std::size_t>(std::atoi(next()));
      header += ", \"max_attempts\": " + json::dump_size(sub.max_attempts);
    } else if (arg == "--heartbeat") {
      sub.heartbeat_s = std::atof(next());
      header += ", \"heartbeat_s\": " + json::dump_number(sub.heartbeat_s);
    } else {
      std::fprintf(stderr,
                   "usage: scibench_submit (--socket PATH | --local) "
                   "[--campaign FILE|-] [--priority N] [--journal PATH]\n"
                   "         [--samples-csv PATH] [--summary-csv PATH] "
                   "[--metrics PATH] [--max-attempts N] [--heartbeat S]\n"
                   "         [--quiet] | --emit-demo NAME\n");
      return arg == "--help" ? 0 : 2;
    }
  }
  header += "}";

  // Read the envelope line.
  std::string envelope_line;
  if (campaign_file == "-") {
    if (!std::getline(std::cin, envelope_line)) {
      std::fprintf(stderr, "scibench_submit: no envelope on stdin\n");
      return 2;
    }
  } else {
    std::ifstream is(campaign_file, std::ios::binary);
    if (!is || !std::getline(is, envelope_line)) {
      std::fprintf(stderr, "scibench_submit: cannot read %s\n",
                   campaign_file.c_str());
      return 2;
    }
  }

  if (local) {
    exec::install_interrupt_handlers();
    try {
      return run_local(exec::wire::parse_campaign_json(envelope_line), sub, quiet);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "scibench_submit: %s\n", e.what());
      return 1;
    }
  }

  if (socket_path.empty()) {
    std::fprintf(stderr, "scibench_submit: --socket or --local is required\n");
    return 2;
  }

  int fd = -1;
  try {
    fd = exec::connect_unix(socket_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "scibench_submit: %s\n", e.what());
    return 2;
  }
  if (!exec::write_line_fd(fd, header) || !exec::write_line_fd(fd, envelope_line)) {
    std::fprintf(stderr, "scibench_submit: daemon hung up during submit\n");
    ::close(fd);
    return 2;
  }

  int exit_code = 1;  // pessimistic: overwritten by a terminal event
  std::string line;
  while (exec::read_line_fd(fd, line)) {
    if (!quiet) std::printf("%s\n", line.c_str());
    try {
      const json::Value event = json::parse(line);
      const std::string kind = event.at("event").as_string();
      if (kind == "done") {
        const bool failed = event.at("failed").as_size() > 0;
        const bool interrupted = event.at("interrupted").as_size() > 0;
        exit_code = interrupted ? exec::kInterruptedExitCode : (failed ? 1 : 0);
        break;
      }
      if (kind == "rejected") {
        exit_code = 2;
        break;
      }
      if (kind == "error") {
        exit_code = 1;
        break;
      }
      if (kind == "cancelled") {
        exit_code = exec::kInterruptedExitCode;
        break;
      }
    } catch (const std::exception&) {
      // Not an event line; keep streaming.
    }
  }
  ::close(fd);
  return exit_code;
}
