// scibench_trace: analyze a Chrome trace-event JSON written by
// sci::obs::TraceSink (open the same file in Perfetto / chrome://tracing
// for the visual version).
//
//   scibench_trace [--breakdown] [--critical-path] [--late-senders] trace.json
//   scibench_trace --emit-demo trace.json [--ranks N] [--seed S]
//
// --emit-demo runs a seeded reduce on the simulated Piz Dora machine
// and writes its trace -- a self-contained way to produce a file to
// analyze here or open in Perfetto.
//
// With no section flags, all sections print. Sections:
//   --breakdown      per-rank time accounting: makespan, busy (interval
//                    union), idle, and the top span names by total time
//   --critical-path  the dependence chain that determined completion:
//                    walks back from the last-finishing p2p span,
//                    hopping recv -> matching send via the "mseq" tag
//   --late-senders   per source rank, how long receivers sat blocked on
//                    its messages ("wait_s" sums)
//
// Exit code 0 on success, 1 on usage/parse errors (a malformed or
// schema-violating trace is reported with a position message).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "obs/trace_read.hpp"
#include "sim/machine.hpp"
#include "simmpi/collectives.hpp"
#include "simmpi/comm.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--breakdown] [--critical-path] [--late-senders] "
               "<trace.json>\n"
               "       %s --emit-demo <trace.json> [--ranks N] [--seed S]\n"
               "  no section flag: print every section\n"
               "  --emit-demo: run a seeded reduce over N simulated ranks\n"
               "               (default 16, seed 42) and write its trace\n",
               argv0, argv0);
  return 1;
}

int emit_demo(const std::string& path, int ranks, std::uint64_t seed) {
  sci::obs::TraceSink sink;
  sci::simmpi::World world(sci::sim::make_dora(), ranks, seed);
  world.name_trace_tracks(sink);
  sci::obs::ScopedAttach attach(sink);
  world.launch([](sci::simmpi::Comm& c) -> sci::sim::Task<void> {
    (void)co_await sci::simmpi::reduce(c, static_cast<double>(c.rank() + 1), 0);
  });
  world.run();
  sink.save(path);
  std::printf("wrote %s: %zu events, %d ranks, seed %llu\n", path.c_str(), sink.size(),
              ranks, static_cast<unsigned long long>(seed));
  return 0;
}

void print_breakdown(const sci::obs::ParsedTrace& trace) {
  const auto ranks = per_rank_breakdown(trace);
  if (ranks.empty()) {
    std::printf("per-rank breakdown: no spans on rank tracks\n\n");
    return;
  }
  std::printf("per-rank breakdown (simulated seconds):\n");
  std::printf("  %-12s %12s %12s %12s  top spans\n", "track", "makespan", "busy", "idle");
  for (const auto& r : ranks) {
    std::printf("  %-12s %12.6g %12.6g %12.6g ",
                r.track.empty() ? ("tid " + std::to_string(r.tid)).c_str()
                                : r.track.c_str(),
                r.makespan_s, r.busy_s, r.idle_s);
    std::size_t shown = 0;
    for (const auto& [name, dur] : r.by_name) {
      if (shown++ == 3) break;
      std::printf(" %s=%.6g", name.c_str(), dur);
    }
    std::printf("\n");
  }
  std::printf("\n");
}

void print_critical_path(const sci::obs::ParsedTrace& trace) {
  const auto path = critical_path(trace);
  if (path.empty()) {
    std::printf("critical path: no point-to-point spans found\n\n");
    return;
  }
  std::printf("critical path (earliest first, %zu hops):\n", path.size());
  double on_path = 0.0;
  for (const auto& seg : path) {
    const auto it = trace.track_names.find(seg.tid);
    const std::string track =
        it == trace.track_names.end() ? "tid " + std::to_string(seg.tid) : it->second;
    std::printf("  [%12.6g, %12.6g] %-10s %s\n", seg.start_s, seg.end_s, track.c_str(),
                seg.name.c_str());
    on_path += seg.end_s - seg.start_s;
  }
  const double makespan = path.back().end_s;
  std::printf("  path time %.6g of makespan %.6g (%.1f%%)\n\n", on_path, makespan,
              makespan > 0.0 ? 100.0 * on_path / makespan : 0.0);
}

void print_late_senders(const sci::obs::ParsedTrace& trace) {
  const auto senders = late_senders(trace);
  if (senders.empty()) {
    std::printf("late senders: no receiver ever blocked\n\n");
    return;
  }
  std::printf("late-sender attribution (receiver block time by source):\n");
  std::printf("  %-8s %14s %8s\n", "source", "blocked [s]", "waits");
  for (const auto& s : senders) {
    std::printf("  rank %-3d %14.6g %8llu\n", s.src_rank, s.blocked_s,
                static_cast<unsigned long long>(s.waits));
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool breakdown = false, critical = false, late = false, demo = false;
  int ranks = 16;
  std::uint64_t seed = 42;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--emit-demo") == 0) {
      demo = true;
    } else if (std::strcmp(argv[i], "--ranks") == 0 && i + 1 < argc) {
      ranks = std::atoi(argv[++i]);
      if (ranks < 1) return usage(argv[0]);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--breakdown") == 0) {
      breakdown = true;
    } else if (std::strcmp(argv[i], "--critical-path") == 0) {
      critical = true;
    } else if (std::strcmp(argv[i], "--late-senders") == 0) {
      late = true;
    } else if (argv[i][0] == '-') {
      return usage(argv[0]);
    } else if (path.empty()) {
      path = argv[i];
    } else {
      return usage(argv[0]);
    }
  }
  if (path.empty()) return usage(argv[0]);
  if (demo) {
    try {
      return emit_demo(path, ranks, seed);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
  }
  if (!breakdown && !critical && !late) breakdown = critical = late = true;

  sci::obs::ParsedTrace trace;
  try {
    trace = sci::obs::load_trace(path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  std::printf("%s: %zu events", path.c_str(), trace.events.size());
  if (!trace.process_name.empty()) std::printf(" (%s)", trace.process_name.c_str());
  std::printf(", %zu rank tracks\n\n", trace.rank_tracks().size());

  if (breakdown) print_breakdown(trace);
  if (critical) print_critical_path(trace);
  if (late) print_late_senders(trace);
  return 0;
}
