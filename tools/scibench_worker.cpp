// scibench_worker: one sandboxed cell executor behind the process pool.
//
// Protocol (exec/wire.hpp): read one "scibench.job" line from stdin,
// run the cell, write one "scibench.cell" line to stdout, repeat until
// stdin closes. Stateless on purpose -- every job line carries the full
// backend options, so any worker can run any job and a crashed worker's
// job re-dispatches elsewhere with the same seed and the same bytes.
//
// A backend exception becomes an error reply (the parent re-throws it,
// so the runner's retry/containment path is identical to an in-process
// throwing backend). A crash -- abort(), segfault, SIGKILL -- kills
// only this process; the parent observes EOF on the pipe and respawns.
//
// Fault drill: a campaign factor named "worker_fault" lets the tests
// and the CI smoke job exercise crash containment deterministically:
//   abort      call abort() (SIGABRT, core-dump class crash)
//   exit       _exit(9) without a reply (silent death)
//   kill_once  if the file named by $SCIBENCH_WORKER_KILL_FILE exists,
//              unlink it and _exit(9) -- exactly one worker dies
//              mid-campaign, emulating an external SIGKILL; the retry
//              then runs the same cell to completion.
// SimBackend ignores unknown factors, so the same campaign run
// in-process produces identical samples -- which is what lets the tests
// compare daemon CSVs against in-process CSVs even in the drill.
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>

#include "exec/sim_backend.hpp"
#include "exec/wire.hpp"

namespace exec = sci::exec;

namespace {

void maybe_inject_fault(const exec::Config& config) {
  const std::string* fault = config.find_level("worker_fault");
  if (fault == nullptr || *fault == "none") return;
  if (*fault == "abort") std::abort();
  if (*fault == "exit") _exit(9);
  if (*fault == "kill_once") {
    const char* sentinel = std::getenv("SCIBENCH_WORKER_KILL_FILE");
    if (sentinel != nullptr && ::unlink(sentinel) == 0) _exit(9);
  }
}

}  // namespace

int main() {
  std::string line;
  for (;;) {
    line.clear();
    int c = 0;
    while ((c = std::fgetc(stdin)) != EOF && c != '\n') {
      line.push_back(static_cast<char>(c));
    }
    if (line.empty() && c == EOF) return 0;  // parent closed the pipe

    exec::CellResult reply;
    try {
      const exec::wire::JobSpec job = exec::wire::parse_job_json(line);
      maybe_inject_fault(job.config);
      exec::SimBackend backend(job.backend);
      reply = backend.run(job.config, job.seed);
    } catch (const std::exception& e) {
      reply = exec::CellResult{};
      reply.samples.clear();
      reply.error = e.what();
    }

    const std::string out = exec::wire::cell_result_to_json(reply);
    if (std::fputs(out.c_str(), stdout) == EOF) return 1;
    if (std::fputc('\n', stdout) == EOF) return 1;
    if (std::fflush(stdout) != 0) return 1;
  }
}
