// scibenchd: benchmark-as-a-service daemon.
//
// Listens on a local Unix-domain socket, accepts serialized campaign
// submissions (exec/wire.hpp), and runs them through a CampaignService
// backed by a pool of scibench_worker processes -- a campaign cell that
// aborts or segfaults costs one worker process, never the daemon or the
// other cells. Results are byte-identical to an in-process
// CampaignRunner at any worker count (see exec/service.hpp).
//
// Client protocol, per connection (scibench_submit speaks this):
//   -> {"op": "submit", "priority": ..., "journal": ..., ...}
//   -> one "scibench.campaign" envelope line (wire::campaign_to_json)
//   <- event lines ("queued", "started", "cell", "progress", ...)
//      until a terminal "done" / "rejected" / "error" / "cancelled"
//
// SIGINT/SIGTERM drain the daemon: the in-flight job's remaining cells
// are marked interrupted (the journal keeps every finished cell), the
// queue is cancelled, the daemon metrics snapshot is written, and the
// process exits with code 3 -- "partial results journaled, rerun to
// resume" (exec/interrupt.hpp).
//
// Usage:
//   scibenchd --socket /tmp/scibench.sock [--workers N]
//             [--worker-bin PATH] [--metrics daemon_metrics.json]
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "exec/interrupt.hpp"
#include "exec/service.hpp"
#include "exec/wire.hpp"
#include "obs/json.hpp"

namespace exec = sci::exec;
namespace json = sci::obs::json;

namespace {

/// Streams one submission's events to the connected client; a dead peer
/// mutes the stream (the job keeps running -- results land on disk).
class ClientSink : public exec::ServiceEventSink {
 public:
  explicit ClientSink(int fd) : fd_(fd) {}
  void on_event(const std::string& line) override {
    if (alive_) alive_ = exec::write_line_fd(fd_, line);
  }

 private:
  int fd_;
  bool alive_ = true;
};

std::string default_worker_path(const char* argv0) {
  if (const char* env = std::getenv("SCIBENCH_WORKER_PATH")) return env;
  // Sibling binary next to the daemon.
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
  std::string dir;
  if (n > 0) {
    buf[n] = '\0';
    dir = buf;
  } else {
    dir = argv0;
  }
  const std::size_t slash = dir.rfind('/');
  dir = slash == std::string::npos ? std::string(".") : dir.substr(0, slash);
  return dir + "/scibench_worker";
}

/// Reads the two-line submission, runs it to a terminal event, closes.
void serve_client(exec::CampaignService& service, int fd) {
  std::string header_line;
  std::string campaign_line;
  ClientSink sink(fd);
  if (exec::read_line_fd(fd, header_line) && exec::read_line_fd(fd, campaign_line)) {
    try {
      const json::Value header = json::parse(header_line);
      if (header.at("op").as_string() != "submit") {
        throw std::runtime_error("unknown op \"" + header.at("op").as_string() + "\"");
      }
      const exec::wire::CampaignEnvelope envelope =
          exec::wire::parse_campaign_json(campaign_line);

      exec::Submission sub;
      sub.spec = envelope.spec;
      sub.backend = envelope.backend;
      const auto str = [&](const char* key) {
        const json::Value* v = header.find(key);
        return v == nullptr ? std::string() : v->as_string();
      };
      if (const json::Value* v = header.find("priority")) {
        sub.priority = static_cast<int>(v->as_number());
      }
      sub.journal_path = str("journal");
      sub.samples_csv = str("samples_csv");
      sub.summary_csv = str("summary_csv");
      sub.metrics_path = str("metrics");
      if (const json::Value* v = header.find("max_attempts")) {
        sub.max_attempts = v->as_size();
      }
      if (const json::Value* v = header.find("heartbeat_s")) {
        sub.heartbeat_s = v->as_number();
      }

      const std::uint64_t id = service.submit(std::move(sub), &sink);
      (void)service.wait(id);  // terminal event already streamed
    } catch (const std::exception& e) {
      exec::write_line_fd(fd, "{\"event\": \"rejected\", \"job\": 0, \"error\": " +
                                  json::quoted(e.what()) + "}");
    }
  }
  ::close(fd);
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  std::string worker_bin = default_worker_path(argv[0]);
  std::string metrics_path;
  std::size_t workers = 2;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "scibenchd: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--socket") {
      socket_path = next();
    } else if (arg == "--workers") {
      workers = static_cast<std::size_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--worker-bin") {
      worker_bin = next();
    } else if (arg == "--metrics") {
      metrics_path = next();
    } else {
      std::fprintf(stderr,
                   "usage: scibenchd --socket PATH [--workers N] "
                   "[--worker-bin PATH] [--metrics PATH]\n");
      return arg == "--help" ? 0 : 2;
    }
  }
  if (socket_path.empty()) {
    std::fprintf(stderr, "scibenchd: --socket is required\n");
    return 2;
  }
  if (workers == 0) workers = 1;

  exec::install_interrupt_handlers();

  int listen_fd = -1;
  try {
    listen_fd = exec::listen_unix(socket_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "scibenchd: %s\n", e.what());
    return 2;
  }

  exec::ProcessPoolOptions popts;
  popts.worker_path = worker_bin;
  popts.workers = workers;
  exec::ProcessPool pool(popts);

  exec::ServiceOptions sopts;
  sopts.interrupt = exec::interrupt_flag();
  exec::CampaignService service(pool, sopts);

  std::fprintf(stderr, "scibenchd: listening on %s (%zu worker processes)\n",
               socket_path.c_str(), pool.worker_count());

  std::vector<std::thread> clients;
  while (!exec::interrupt_requested()) {
    pollfd pfd{};
    pfd.fd = listen_fd;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, 200 /* ms; bounded interrupt latency */);
    if (ready <= 0) continue;  // timeout or EINTR: re-check the flag
    const int client_fd = ::accept(listen_fd, nullptr, nullptr);
    if (client_fd < 0) continue;
    clients.emplace_back(
        [&service, client_fd] { serve_client(service, client_fd); });
  }

  ::close(listen_fd);
  ::unlink(socket_path.c_str());
  service.stop();  // cancels the queue; the active job drains via the flag
  for (std::thread& t : clients) t.join();

  if (!metrics_path.empty()) {
    std::ofstream os(metrics_path, std::ios::binary | std::ios::trunc);
    os << service.metrics().to_json();
  }
  std::fprintf(stderr, "scibenchd: interrupted; journals are resumable\n");
  return exec::kInterruptedExitCode;
}
